//===- tests/test_read_consistency.cpp - Algorithm 4 tests --------------------===//
//
// The five Read Consistency axioms of Fig. 2, each with violating and
// conforming histories.
//
//===----------------------------------------------------------------------===//

#include "checker/read_consistency.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {

std::vector<Violation> check(const History &H) {
  std::vector<Violation> Out;
  checkReadConsistency(H, Out);
  return Out;
}

bool has(const std::vector<Violation> &Vs, ViolationKind Kind) {
  for (const Violation &V : Vs)
    if (V.Kind == Kind)
      return true;
  return false;
}

} // namespace

TEST(ReadConsistency, CleanHistoryPasses) {
  History H = makeHistory({
      {0, {W(1, 10), W(2, 20)}},
      {1, {R(1, 10), R(2, 20)}},
  });
  EXPECT_TRUE(check(H).empty());
}

TEST(ReadConsistency, ThinAirRead) {
  History H = makeHistory({
      {0, {R(1, 99)}},
  });
  std::vector<Violation> Vs = check(H);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::ThinAirRead);
  EXPECT_EQ(Vs[0].T, 0u);
}

TEST(ReadConsistency, AbortedRead) {
  History H = makeHistory({
      {0, {W(1, 10)}, /*Abort=*/true},
      {1, {R(1, 10)}},
  });
  std::vector<Violation> Vs = check(H);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::AbortedRead);
  EXPECT_EQ(Vs[0].Other, 0u);
}

TEST(ReadConsistency, ReadsInsideAbortedTxnIgnored) {
  // Axioms quantify over committed reads only.
  History H = makeHistory({
      {0, {R(1, 99)}, /*Abort=*/true},
  });
  EXPECT_TRUE(check(H).empty());
}

TEST(ReadConsistency, FutureRead) {
  History H = makeHistory({
      {0, {R(1, 10), W(1, 10)}},
  });
  std::vector<Violation> Vs = check(H);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::FutureRead);
}

TEST(ReadConsistency, ObserveOwnWritesViolation) {
  // Fig. 2d: t writes x, then reads x from another transaction.
  History H = makeHistory({
      {0, {W(1, 10)}},
      {1, {W(1, 20), R(1, 10)}},
  });
  std::vector<Violation> Vs = check(H);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::NotOwnWrite);
}

TEST(ReadConsistency, ReadBeforeOwnWriteIsExternalAndFine) {
  // Reading x externally *before* writing x is allowed.
  History H = makeHistory({
      {0, {W(1, 10)}},
      {1, {R(1, 10), W(1, 20)}},
  });
  EXPECT_TRUE(check(H).empty());
}

TEST(ReadConsistency, StaleOwnWrite) {
  // Fig. 2e within one transaction: the read observes an own write that
  // has been overwritten.
  History H = makeHistory({
      {0, {W(1, 10), W(1, 20), R(1, 10)}},
  });
  std::vector<Violation> Vs = check(H);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::NotLatestWriteSameTxn);
}

TEST(ReadConsistency, LatestOwnWritePasses) {
  History H = makeHistory({
      {0, {W(1, 10), W(1, 20), R(1, 20)}},
  });
  EXPECT_TRUE(check(H).empty());
}

TEST(ReadConsistency, NonFinalWriteOfOtherTxn) {
  // Fig. 2e across transactions: only a transaction's final write per key
  // is observable.
  History H = makeHistory({
      {0, {W(1, 10), W(1, 20)}},
      {1, {R(1, 10)}},
  });
  std::vector<Violation> Vs = check(H);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Kind, ViolationKind::NotLatestWriteOtherTxn);
}

TEST(ReadConsistency, FinalWriteOfOtherTxnPasses) {
  History H = makeHistory({
      {0, {W(1, 10), W(1, 20)}},
      {1, {R(1, 20)}},
  });
  EXPECT_TRUE(check(H).empty());
}

TEST(ReadConsistency, ReportsAllFailingReadsIndependently) {
  // §3.4: every failing read is reported, not just the first.
  History H = makeHistory({
      {0, {R(1, 91), R(2, 92), R(3, 93)}},
  });
  EXPECT_EQ(check(H).size(), 3u);
}

TEST(ReadConsistency, MixedViolationsClassified) {
  History H = makeHistory({
      {0, {W(1, 10)}, /*Abort=*/true},
      {1, {R(1, 10), R(2, 99), W(3, 30), R(3, 30)}},
      {2, {W(4, 40), W(4, 41)}},
      {3, {R(4, 40)}},
  });
  std::vector<Violation> Vs = check(H);
  EXPECT_TRUE(has(Vs, ViolationKind::AbortedRead));
  EXPECT_TRUE(has(Vs, ViolationKind::ThinAirRead));
  EXPECT_TRUE(has(Vs, ViolationKind::NotLatestWriteOtherTxn));
  EXPECT_EQ(Vs.size(), 3u);
}

TEST(ReadConsistency, RereadOfOwnLatestAfterInterleavedKeyPasses) {
  History H = makeHistory({
      {0, {W(1, 10), W(2, 20), R(1, 10), W(1, 11), R(1, 11), R(2, 20)}},
  });
  EXPECT_TRUE(check(H).empty());
}
