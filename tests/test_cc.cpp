//===- tests/test_cc.cpp - Algorithm 3 (Causal Consistency) tests -------------===//

#include "checker/check_cc.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2, Z = 3;

bool ccConsistent(const History &H, SaturationStats *Stats = nullptr) {
  std::vector<Violation> Out;
  return checkCc(H, Out, /*MaxWitnesses=*/4, Stats);
}
} // namespace

TEST(HappensBefore, SoChain) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {0, {W(X, 3)}},
  });
  HappensBefore HB;
  ASSERT_TRUE(computeHappensBefore(H, HB));
  // Exclusive clocks: t0 sees nothing; t2 sees up to SoIndex 1 (stored +1).
  EXPECT_EQ(HB.get(0, 0), 0u);
  EXPECT_EQ(HB.get(1, 0), 1u);
  EXPECT_EQ(HB.get(2, 0), 2u);
}

TEST(HappensBefore, WrPropagatesAcrossSessions) {
  History H = makeHistory({
      {0, {W(X, 1)}},          // t0
      {1, {R(X, 1), W(Y, 1)}}, // t1: t0 hb t1
      {2, {R(Y, 1)}},          // t2: t0, t1 hb t2
  });
  HappensBefore HB;
  ASSERT_TRUE(computeHappensBefore(H, HB));
  EXPECT_EQ(HB.get(1, 0), 1u); // t1 knows t0.
  EXPECT_EQ(HB.get(2, 0), 1u); // transitively via t1.
  EXPECT_EQ(HB.get(2, 1), 1u); // t2 knows t1.
  EXPECT_EQ(HB.get(0, 1), 0u); // t0 knows nothing of session 1.
}

TEST(HappensBefore, CycleDetected) {
  History H = makeHistory({
      {0, {W(X, 1), R(Y, 1)}},
      {1, {W(Y, 1), R(X, 1)}},
  });
  HappensBefore HB;
  EXPECT_FALSE(computeHappensBefore(H, HB));
}

TEST(CheckCc, CausalChainViolationDetected) {
  // Fig. 4c shape: t2 hb t4 through t3, yet t4 reads the x-version t2
  // overwrote.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), W(Y, 3)}},
      {2, {R(Y, 3), R(X, 1)}},
  });
  EXPECT_FALSE(ccConsistent(H));
}

TEST(CheckCc, ConcurrentWritesReadDifferentlyConsistent) {
  // Two causally unrelated writers of x; different readers observing
  // different versions is causally fine.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {2, {R(X, 1)}},
      {3, {R(X, 2)}},
  });
  EXPECT_TRUE(ccConsistent(H));
}

TEST(CheckCc, Fig4dConsistent) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1), W(X, 2)}},
      {1, {R(X, 2)}},
      {2, {R(X, 1), W(X, 3)}},
      {2, {R(X, 3)}},
  });
  EXPECT_TRUE(ccConsistent(H));
}

TEST(CheckCc, CausalityCycleReported) {
  History H = makeHistory({
      {0, {W(X, 1), R(Y, 1)}},
      {1, {W(Y, 1), R(X, 1)}},
  });
  std::vector<Violation> Out;
  EXPECT_FALSE(checkCc(H, Out));
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out[0].Kind, ViolationKind::CausalityCycle);
}

TEST(CheckCc, SessionStalenessAcrossManySessionsConsistent) {
  // Each session reads a progressively staler version: causal as long as
  // no observer contradicts the causal order.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {0, {W(X, 3)}},
      {1, {R(X, 3)}},
      {2, {R(X, 2)}},
      {3, {R(X, 1)}},
  });
  EXPECT_TRUE(ccConsistent(H));
}

TEST(CheckCc, MonotoneSessionObservationRequired) {
  // One session observing x going backwards violates causality: its own
  // earlier read makes the newer version causally known.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2)}},
      {1, {R(X, 1)}},
  });
  EXPECT_FALSE(ccConsistent(H));
}

TEST(CheckCc, LastWriterPerSessionUsed) {
  // Session 0 writes x twice; a causally dependent reader must observe
  // the later version (or something newer), not the first.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 1)}},
      {1, {R(Y, 1), R(X, 1)}},
  });
  EXPECT_FALSE(ccConsistent(H));
}

TEST(CheckCc, ReadingNewestAfterCausalDependencyConsistent) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 1)}},
      {1, {R(Y, 1), R(X, 2)}},
  });
  EXPECT_TRUE(ccConsistent(H));
}

TEST(CheckCc, StatsPopulated) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1), W(Y, 1)}},
      {2, {R(Y, 1), R(X, 1)}},
  });
  SaturationStats Stats;
  EXPECT_TRUE(ccConsistent(H, &Stats));
  EXPECT_GT(Stats.GraphEdges, 0u);
}

TEST(CheckCc, NonRepeatableReadCaughtAsCycle) {
  // CC runs no explicit repeatable-reads check; the two writers force
  // each other co-before the other via the reader, closing a cycle.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {2, {R(X, 1), R(X, 2)}},
  });
  EXPECT_FALSE(ccConsistent(H));
}

TEST(CheckCc, DeepWrChainPropagation) {
  // A long causal chain: the origin's overwrite must be respected at the
  // far end.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 1)}},
      {1, {R(Y, 1), W(Z, 1)}},
      {2, {R(Z, 1), W(4, 1)}},
      {3, {R(4, 1), W(5, 1)}},
      {4, {R(5, 1), R(X, 1)}},
  });
  EXPECT_FALSE(ccConsistent(H));
}
