//===- tests/test_injector.cpp - Anomaly injector tests -------------------------===//

#include "sim/anomaly_injector.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace awdit;
using namespace awdit::test;

namespace {

History cleanBase(uint64_t Seed) {
  GenerateParams P;
  P.Bench = Benchmark::Tpcc;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 6;
  P.Txns = 200;
  P.Seed = Seed;
  return generateHistory(P);
}

constexpr AnomalyKind AllKinds[] = {
    AnomalyKind::ThinAirRead,      AnomalyKind::AbortedRead,
    AnomalyKind::FutureRead,       AnomalyKind::FracturedRead,
    AnomalyKind::NonMonotonicRead, AnomalyKind::CausalViolation,
    AnomalyKind::CausalityCycle,
};

} // namespace

/// Injected anomalies must violate exactly the promised levels (given a
/// base history consistent at all levels).
class InjectorContract
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InjectorContract, ViolatesPromisedLevels) {
  auto [KindIdx, Seed] = GetParam();
  AnomalyKind Kind = AllKinds[KindIdx];
  History Base = cleanBase(Seed);
  for (IsolationLevel Level : AllIsolationLevels)
    ASSERT_TRUE(consistent(Base, Level)) << "base must be clean";

  std::string Err;
  std::optional<History> H = injectAnomaly(Base, Kind, Seed * 31, &Err);
  ASSERT_TRUE(H) << Err;

  for (IsolationLevel Level : AllIsolationLevels) {
    bool MustViolate = anomalyViolates(Kind, Level);
    bool Consistent = consistent(*H, Level);
    if (MustViolate)
      EXPECT_FALSE(Consistent)
          << anomalyKindName(Kind) << " must violate "
          << isolationLevelName(Level);
    else
      EXPECT_TRUE(Consistent)
          << anomalyKindName(Kind) << " must keep "
          << isolationLevelName(Level) << " intact on a clean base";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InjectorContract,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(1, 5)));

TEST(Injector, ReportedViolationKindMatchesReadLevelAnomalies) {
  History Base = cleanBase(1);
  struct {
    AnomalyKind Kind;
    ViolationKind Expected;
  } Cases[] = {
      {AnomalyKind::ThinAirRead, ViolationKind::ThinAirRead},
      {AnomalyKind::AbortedRead, ViolationKind::AbortedRead},
      {AnomalyKind::FutureRead, ViolationKind::FutureRead},
  };
  for (const auto &C : Cases) {
    std::optional<History> H = injectAnomaly(Base, C.Kind, 7);
    ASSERT_TRUE(H);
    CheckReport Report =
        checkIsolation(*H, IsolationLevel::CausalConsistency);
    EXPECT_FALSE(Report.Consistent);
    EXPECT_TRUE(hasViolation(Report, C.Expected))
        << anomalyKindName(C.Kind);
  }
}

TEST(Injector, CausalityCycleReportedAsSuch) {
  History Base = cleanBase(2);
  std::optional<History> H =
      injectAnomaly(Base, AnomalyKind::CausalityCycle, 3);
  ASSERT_TRUE(H);
  CheckReport Report = checkIsolation(*H, IsolationLevel::ReadCommitted);
  EXPECT_FALSE(Report.Consistent);
  EXPECT_TRUE(hasViolation(Report, ViolationKind::CausalityCycle));
}

TEST(Injector, DeterministicForSeed) {
  History Base = cleanBase(4);
  std::optional<History> A =
      injectAnomaly(Base, AnomalyKind::FracturedRead, 5);
  std::optional<History> B =
      injectAnomaly(Base, AnomalyKind::FracturedRead, 5);
  ASSERT_TRUE(A && B);
  ASSERT_EQ(A->numTxns(), B->numTxns());
  for (TxnId Id = 0; Id < A->numTxns(); ++Id)
    EXPECT_TRUE(A->txn(Id).Ops == B->txn(Id).Ops);
}

TEST(Injector, FailsGracefullyWithoutSites) {
  // A write-only history offers no read to corrupt.
  History H = makeHistory({
      {0, {W(1, 10)}},
  });
  std::string Err;
  EXPECT_FALSE(injectAnomaly(H, AnomalyKind::ThinAirRead, 1, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(injectAnomaly(H, AnomalyKind::AbortedRead, 1, &Err));
}

TEST(Injector, GadgetsWorkOnTinyBases) {
  // Appended gadgets need no sites; they must work even on an empty-ish
  // base with fewer sessions than the gadget wants.
  History H = makeHistory({
      {0, {W(1, 10)}},
  });
  for (AnomalyKind Kind :
       {AnomalyKind::FracturedRead, AnomalyKind::NonMonotonicRead,
        AnomalyKind::CausalViolation, AnomalyKind::CausalityCycle}) {
    std::optional<History> Mutated = injectAnomaly(H, Kind, 11);
    ASSERT_TRUE(Mutated) << anomalyKindName(Kind);
    EXPECT_FALSE(
        consistent(*Mutated, IsolationLevel::CausalConsistency));
  }
}

TEST(Injector, NamesAreDistinct) {
  std::set<std::string> Names;
  for (AnomalyKind Kind : AllKinds)
    Names.insert(anomalyKindName(Kind));
  EXPECT_EQ(Names.size(), std::size(AllKinds));
}
