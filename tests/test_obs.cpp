//===- tests/test_obs.cpp - Observability core: histograms + tracing --------===//
//
// The acceptance battery of src/obs/: log-linear histogram bucket math,
// merge/subtract algebra, overflow handling, Prometheus rendering
// invariants (ascending `le` bounds, monotone cumulative counts, the
// +Inf/_sum/_count triple), STATS-deep percentile JSON; and the span
// tracer — disabled recording is empty, enabled dumps are well-formed
// Chrome-trace JSON with nested spans, thread names, and counter tracks,
// and a real sharded pipeline run leaves reader/decode/apply/flush/
// checkpoint spans in the dump.
//
//===----------------------------------------------------------------------===//

#include "checker/checkpoint.h"
#include "checker/monitor.h"
#include "checker/violation_sink.h"
#include "io/text_format.h"
#include "io/sharded_ingest.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "support/serialize.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace awdit;
using namespace awdit::test;

namespace {

//===----------------------------------------------------------------------===//
// Histogram bucket math
//===----------------------------------------------------------------------===//

TEST(HistogramBuckets, SmallValuesMapExactly) {
  for (uint64_t V = 0; V < 4; ++V) {
    EXPECT_EQ(obs::histogramBucketFor(V), V);
    EXPECT_EQ(obs::histogramBucketUpper(V), V);
  }
}

TEST(HistogramBuckets, UpperBoundsAreMonotone) {
  for (size_t I = 1; I < obs::NumHistogramBuckets; ++I)
    EXPECT_GT(obs::histogramBucketUpper(I), obs::histogramBucketUpper(I - 1))
        << "bucket " << I;
}

TEST(HistogramBuckets, ValueLandsAtOrBelowItsUpperBound) {
  // Every bucket's inclusive upper bound must map back to that bucket,
  // and the next integer must map strictly later.
  for (size_t I = 0; I < obs::NumHistogramBuckets; ++I) {
    uint64_t Upper = obs::histogramBucketUpper(I);
    EXPECT_EQ(obs::histogramBucketFor(Upper), I) << "upper " << Upper;
    size_t Next = obs::histogramBucketFor(Upper + 1);
    EXPECT_GT(Next, I) << "upper+1 " << Upper + 1;
  }
}

TEST(HistogramBuckets, RelativeErrorBounded) {
  // Log-linear with 4 sub-buckets: the bucket width is at most ~25% of
  // the value, so quantiles resolve to ~25% relative error.
  for (uint64_t V = 4; V < (uint64_t(1) << 26); V = V * 5 / 4 + 1) {
    size_t I = obs::histogramBucketFor(V);
    uint64_t Upper = obs::histogramBucketUpper(I);
    ASSERT_GE(Upper, V);
    EXPECT_LE(static_cast<double>(Upper - V), 0.26 * static_cast<double>(V))
        << "value " << V << " bucket upper " << Upper;
  }
}

TEST(HistogramBuckets, HugeValuesOverflow) {
  EXPECT_EQ(obs::histogramBucketFor(uint64_t(1) << 40),
            obs::NumHistogramBuckets);
  EXPECT_EQ(obs::histogramBucketFor(UINT64_MAX), obs::NumHistogramBuckets);
}

//===----------------------------------------------------------------------===//
// Record / snapshot / percentile / merge
//===----------------------------------------------------------------------===//

TEST(Histogram, RecordAndPercentiles) {
  obs::LatencyHistogram H;
  EXPECT_TRUE(H.empty());
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V * 10); // 10..1000 micros
  EXPECT_FALSE(H.empty());
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 100u);
  EXPECT_EQ(S.Sum, 50500u);
  // Bucketed quantiles floor to the bucket's upper bound: within the
  // ~25% bucket width of the exact answer, never below it.
  uint64_t P50 = S.percentile(0.50);
  EXPECT_GE(P50, 500u);
  EXPECT_LE(P50, 640u);
  uint64_t P99 = S.percentile(0.99);
  EXPECT_GE(P99, 990u);
  EXPECT_LE(P99, 1280u);
  EXPECT_EQ(S.percentile(0.0), S.percentile(1.0 / 100));
}

TEST(Histogram, EmptySnapshotIsZero) {
  obs::LatencyHistogram H;
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.percentile(0.5), 0u);
}

TEST(Histogram, MergeAndSubtract) {
  obs::LatencyHistogram A, B;
  for (int I = 0; I < 10; ++I)
    A.record(100);
  for (int I = 0; I < 30; ++I)
    B.record(10000);
  obs::HistogramSnapshot SA = A.snapshot(), SB = B.snapshot();
  obs::HistogramSnapshot Merged = SA;
  Merged.add(SB);
  EXPECT_EQ(Merged.Count, 40u);
  EXPECT_EQ(Merged.Sum, 10 * 100u + 30 * 10000u);
  // p50 of the merged set sits in B's bucket (30 of 40 samples).
  EXPECT_GE(Merged.percentile(0.5), 10000u);

  // Subtracting the earlier snapshot recovers the delta.
  obs::HistogramSnapshot Delta = Merged;
  Delta.minus(SA);
  EXPECT_EQ(Delta.Count, SB.Count);
  EXPECT_EQ(Delta.Sum, SB.Sum);
  EXPECT_EQ(Delta.percentile(0.5), SB.percentile(0.5));
}

TEST(Histogram, OverflowBucketQuantileFloors) {
  obs::LatencyHistogram H;
  H.record(uint64_t(1) << 40); // way past the last finite bucket
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(S.Buckets[obs::NumHistogramBuckets], 1u);
  // The quantile floors to the last finite bound instead of inventing a
  // number: the true value is larger and the caller knows it.
  EXPECT_EQ(S.percentile(1.0),
            obs::histogramBucketUpper(obs::NumHistogramBuckets - 1));
}

//===----------------------------------------------------------------------===//
// Prometheus rendering
//===----------------------------------------------------------------------===//

/// Parses `NAME_bucket{...le="BOUND"} COUNT` lines out of \p Prom.
struct BucketLine {
  double Le = 0;
  bool Inf = false;
  uint64_t Cum = 0;
};

std::vector<BucketLine> parseBucketLines(const std::string &Prom,
                                         const std::string &Name) {
  std::vector<BucketLine> Out;
  std::istringstream In(Prom);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind(Name + "_bucket{", 0) != 0)
      continue;
    size_t Le = Line.find("le=\"");
    size_t EndQ = Line.find('"', Le + 4);
    size_t Sp = Line.rfind(' ');
    EXPECT_NE(Le, std::string::npos) << Line;
    EXPECT_NE(Sp, std::string::npos) << Line;
    BucketLine B;
    std::string Bound = Line.substr(Le + 4, EndQ - Le - 4);
    if (Bound == "+Inf")
      B.Inf = true;
    else
      B.Le = std::stod(Bound);
    B.Cum = std::stoull(Line.substr(Sp + 1));
    Out.push_back(B);
  }
  return Out;
}

TEST(Histogram, PrometheusRendering) {
  obs::LatencyHistogram H;
  H.record(1);       // 1us
  H.record(1000);    // 1ms
  H.record(1000000); // 1s
  std::string Prom;
  H.snapshot().renderProm(Prom, "awdit_test_seconds", "");

  std::vector<BucketLine> B = parseBucketLines(Prom, "awdit_test_seconds");
  ASSERT_GE(B.size(), 3u);
  EXPECT_TRUE(B.back().Inf);
  EXPECT_EQ(B.back().Cum, 3u);
  for (size_t I = 1; I < B.size(); ++I) {
    if (!B[I].Inf) {
      EXPECT_GT(B[I].Le, B[I - 1].Le) << "le bounds must ascend";
    }
    EXPECT_GE(B[I].Cum, B[I - 1].Cum) << "cumulative must be monotone";
  }
  // Bounds are rendered in seconds: 1us lands under a <=1e-6-ish bound,
  // so the first nonzero cumulative appears at a tiny `le`.
  EXPECT_LT(B.front().Le, 1e-5);

  // The classic triple closes the family.
  EXPECT_NE(Prom.find("awdit_test_seconds_sum "), std::string::npos);
  EXPECT_NE(Prom.find("awdit_test_seconds_count 3\n"), std::string::npos);
  // _sum is in seconds too: 1.001001 total.
  size_t SumPos = Prom.find("awdit_test_seconds_sum ");
  double Sum = std::stod(Prom.substr(SumPos + strlen("awdit_test_seconds_sum ")));
  EXPECT_NEAR(Sum, 1.001001, 1e-6);
}

TEST(Histogram, PrometheusLabelsAndUnitless) {
  obs::LatencyHistogram H;
  H.record(7);
  std::string Prom;
  H.snapshot().renderProm(Prom, "awdit_depth", "stage=\"reader\"",
                          /*Unitless=*/true);
  // Labels precede le, and unitless bounds are plain integers.
  EXPECT_NE(Prom.find("awdit_depth_bucket{stage=\"reader\",le=\"7\"} 1"),
            std::string::npos)
      << Prom;
  EXPECT_NE(Prom.find("awdit_depth_sum{stage=\"reader\"} 7"),
            std::string::npos);
  EXPECT_NE(Prom.find("awdit_depth_count{stage=\"reader\"} 1"),
            std::string::npos);
  EXPECT_EQ(Prom.find(".\""), std::string::npos)
      << "unitless bounds must not be seconds-scaled";
}

TEST(Histogram, PercentilesJsonShape) {
  obs::LatencyHistogram H;
  for (int I = 0; I < 8; ++I)
    H.record(100);
  std::string Json = H.snapshot().percentilesJson();
  EXPECT_NE(Json.find("\"count\":8"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"sum_micros\":800"), std::string::npos);
  EXPECT_NE(Json.find("\"p50_micros\":"), std::string::npos);
  EXPECT_NE(Json.find("\"p90_micros\":"), std::string::npos);
  EXPECT_NE(Json.find("\"p99_micros\":"), std::string::npos);
  EXPECT_NE(Json.find("\"max_micros\":"), std::string::npos);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
}

TEST(Histogram, PhaseAndStageNames) {
  EXPECT_STREQ(obs::flushPhaseName(obs::FlushPhase::DeltaBuild),
               "delta_build");
  EXPECT_STREQ(obs::flushPhaseName(obs::FlushPhase::Finalize), "finalize");
  EXPECT_STREQ(obs::ingestStageName(obs::IngestStage::Reader), "reader");
  EXPECT_STREQ(obs::ingestStageName(obs::IngestStage::Apply), "apply");
}

//===----------------------------------------------------------------------===//
// A minimal strict JSON parser: enough to prove a trace dump is
// well-formed (Perfetto rejects malformed JSON outright).
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(std::string_view Text) : Text(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }
  bool literal(std::string_view L) {
    if (Text.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }
  bool string() {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool number() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }
  bool value() {
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= Text.size() || Text[Pos] != '}')
      return false;
    ++Pos;
    return true;
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= Text.size() || Text[Pos] != ']')
      return false;
    ++Pos;
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
};

/// Scoped tracing: on at construction, off + cleared at destruction so no
/// test leaks recording state into its neighbors.
struct TraceSession {
  TraceSession() {
    obs::traceClear();
    obs::setTraceEnabled(true);
  }
  ~TraceSession() {
    obs::setTraceEnabled(false);
    obs::traceClear();
  }
};

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledRecordsNothing) {
  obs::setTraceEnabled(false);
  obs::traceClear();
  {
    AWDIT_SPAN("obs_test.should_not_appear");
    obs::traceCounter("obs_test.counter_not_appear", 42.0);
  }
  std::string Json = obs::traceDumpJson();
  EXPECT_EQ(Json.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(Json.find("counter_not_appear"), std::string::npos);
  EXPECT_TRUE(JsonChecker(Json).valid());
}

TEST(Trace, EnabledSpansAppearAndDumpIsValidJson) {
  TraceSession T;
  obs::setTraceThreadName("obs-test-main");
  {
    AWDIT_SPAN("obs_test.outer");
    {
      AWDIT_SPAN("obs_test.inner");
    }
  }
  obs::traceCounter("obs_test.depth", 3.5);
  std::string Json = obs::traceDumpJson();
  ASSERT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Json.find("\"obs_test.outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"obs_test.inner\""), std::string::npos);
  // Complete events with category + timestamps.
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"awdit\""), std::string::npos);
  // The counter sample renders as a Chrome counter event.
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"obs_test.depth\""), std::string::npos);
  EXPECT_NE(Json.find("3.5"), std::string::npos);
  // Thread-name metadata labels the track.
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"obs-test-main\""), std::string::npos);
}

TEST(Trace, NestedSpanDurationsAreOrdered) {
  TraceSession T;
  {
    AWDIT_SPAN("obs_test.nest_outer");
    AWDIT_SPAN("obs_test.nest_inner");
    // Both close here; the inner (declared later) closes first.
  }
  std::string Json = obs::traceDumpJson();
  // The ring records completion order: inner lands before outer.
  size_t Inner = Json.find("\"obs_test.nest_inner\"");
  size_t Outer = Json.find("\"obs_test.nest_outer\"");
  ASSERT_NE(Inner, std::string::npos);
  ASSERT_NE(Outer, std::string::npos);
  EXPECT_LT(Inner, Outer);
  // And the outer's duration covers the inner's.
  auto durAfter = [&](size_t Pos) {
    size_t D = Json.find("\"dur\":", Pos);
    EXPECT_NE(D, std::string::npos);
    return std::stod(Json.substr(D + 6));
  };
  EXPECT_GE(durAfter(Outer), durAfter(Inner));
}

TEST(Trace, ClearDropsHistory) {
  TraceSession T;
  {
    AWDIT_SPAN("obs_test.before_clear");
  }
  obs::traceClear();
  {
    AWDIT_SPAN("obs_test.after_clear");
  }
  std::string Json = obs::traceDumpJson();
  EXPECT_EQ(Json.find("obs_test.before_clear"), std::string::npos);
  EXPECT_NE(Json.find("obs_test.after_clear"), std::string::npos);
}

TEST(Trace, RingOverwriteKeepsMostRecent) {
  TraceSession T;
  {
    AWDIT_SPAN("obs_test.evicted_span");
  }
  for (size_t I = 0; I < obs::TraceRingSlots + 64; ++I) {
    AWDIT_SPAN("obs_test.filler");
  }
  std::string Json = obs::traceDumpJson();
  ASSERT_TRUE(JsonChecker(Json).valid());
  // The first span was pushed out of the window; fillers remain.
  EXPECT_EQ(Json.find("obs_test.evicted_span"), std::string::npos);
  EXPECT_NE(Json.find("obs_test.filler"), std::string::npos);
}

TEST(Trace, WriteTraceFileRoundTrip) {
  TraceSession T;
  {
    AWDIT_SPAN("obs_test.file_span");
  }
  std::string Dir = ::testing::TempDir();
  std::string Path = Dir + "/awdit-obs-test-trace.json";
  std::string Err;
  ASSERT_TRUE(obs::writeTraceFile(Path, &Err)) << Err;
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Json = Buf.str();
  EXPECT_TRUE(JsonChecker(Json).valid());
  EXPECT_NE(Json.find("obs_test.file_span"), std::string::npos);
  std::filesystem::remove(Path);
}

TEST(Trace, WriteTraceFileReportsBadPath) {
  std::string Err;
  EXPECT_FALSE(obs::writeTraceFile("/nonexistent-dir-xyz/t.json", &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// The whole pipeline under trace: a sharded run must leave spans from the
// reader, the shard workers, the applier, the flush phases, and a
// checkpoint write — and the dump must stay valid JSON while threads are
// still recording.
//===----------------------------------------------------------------------===//

TEST(Trace, ShardedPipelineLeavesAllStageSpans) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 8;
  P.Txns = 2000;
  P.Seed = 99;
  std::string Text = writeTextHistory(generateHistory(P));

  TraceSession T;
  obs::setTraceThreadName("reader");

  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 128;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  std::string CkptBlob;
  ShardedMonitorIngest Ingest(
      M, "native", /*Threads=*/4, [&](const IngestFlushPoint &FP) {
        if (!CkptBlob.empty())
          return;
        CheckpointMeta Meta;
        Meta.Format = "native";
        Meta.Options = Options;
        Meta.StreamOffset = FP.StreamOffset;
        Meta.LineNo = FP.LineNo;
        Meta.CommittedTxns = FP.CommittedTxns;
        Meta.Flushes = FP.Flushes;
        std::string MachineBlob;
        ByteWriter W(MachineBlob);
        FP.Machine.saveState(W);
        CkptBlob = encodeCheckpoint(FP.M, MachineBlob, Meta);
      });
  ASSERT_TRUE(Ingest.valid());
  for (size_t Pos = 0; Pos < Text.size(); Pos += 7777)
    if (!Ingest.feed(std::string_view(Text).substr(Pos, 7777)))
      break;

  // Dump while the pipeline is mid-flight: readers must never tear.
  std::string MidFlight = obs::traceDumpJson();
  EXPECT_TRUE(JsonChecker(MidFlight).valid());

  EXPECT_NE(Ingest.finishStream(), ShardedMonitorIngest::EndState::Error)
      << Ingest.errorText();
  M.finalize();

  // A v1 checkpoint write under trace.
  ASSERT_FALSE(CkptBlob.empty()) << "no flush happened";
  std::string Dir = ::testing::TempDir() + "/awdit-obs-ckpt";
  std::filesystem::create_directories(Dir);
  std::string Err;
  ASSERT_TRUE(writeCheckpointFile(Dir, CkptBlob, &Err)) << Err;

  std::string Json = obs::traceDumpJson();
  ASSERT_TRUE(JsonChecker(Json).valid());
  for (const char *Span :
       {"\"ingest.read\"", "\"ingest.decode\"", "\"ingest.apply\"",
        "\"flush\"", "\"flush.delta\"", "\"flush.finalize\"",
        "\"checkpoint.v1\""})
    EXPECT_NE(Json.find(Span), std::string::npos) << "missing " << Span;
  // Worker threads named their tracks.
  EXPECT_NE(Json.find("\"applier\""), std::string::npos);
  EXPECT_NE(Json.find("\"shard-0\""), std::string::npos);
  // The SPSC depth counter track was sampled.
  EXPECT_NE(Json.find("\"ingest.queue_depth\""), std::string::npos);

  std::filesystem::remove_all(Dir);
}

TEST(Metrics, PipelineRunFillsHistograms) {
  // The run above (any monitored run, really) must have recorded flush
  // and ingest-stage samples into the process-wide registry. Run a small
  // one here so this test stands alone.
  GenerateParams P;
  P.Bench = Benchmark::Random;
  P.Sessions = 4;
  P.Txns = 600;
  P.Seed = 5;
  std::string Text = writeTextHistory(generateHistory(P));
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.CheckIntervalTxns = 64;
  Monitor M(Options);
  ShardedMonitorIngest Ingest(M, "native", /*Threads=*/2);
  ASSERT_TRUE(Ingest.valid());
  Ingest.feed(Text);
  Ingest.finishStream();
  M.finalize();

  obs::PipelineMetrics &Met = obs::metrics();
  EXPECT_FALSE(Met.FlushTotal.empty());
  for (unsigned I = 0; I < obs::NumFlushPhases; ++I)
    EXPECT_FALSE(Met.FlushPhases[I].empty())
        << obs::flushPhaseName(static_cast<obs::FlushPhase>(I));
  EXPECT_FALSE(
      Met.IngestStages[unsigned(obs::IngestStage::Decode)].empty());
  EXPECT_FALSE(
      Met.IngestStages[unsigned(obs::IngestStage::Apply)].empty());
  EXPECT_FALSE(Met.IngestQueueDepth.empty());

  // The per-monitor cumulative histogram carries the same flushes.
  EXPECT_FALSE(M.flushLatency().empty());
  EXPECT_GT(M.flushLatency().snapshot().Count, 0u);
}

TEST(Metrics, ScopedLatencyAccumulates) {
  obs::LatencyHistogram H;
  uint64_t Acc = 0;
  {
    obs::ScopedLatency L(H, &Acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    obs::ScopedLatency L(H); // null accumulator is fine
  }
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 2u);
  // The accumulator got the same micros the histogram recorded: at least
  // the 2ms sleep, and equal to the snapshot sum minus the second
  // (accumulator-less) sample's contribution — bounded loosely here.
  EXPECT_GE(Acc, 2000u);
  EXPECT_LE(Acc, S.Sum);
}

} // namespace
