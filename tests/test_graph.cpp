//===- tests/test_graph.cpp - Graph substrate tests ---------------------------===//

#include "graph/cycle.h"
#include "graph/digraph.h"
#include "graph/scc.h"
#include "graph/topo_sort.h"
#include "graph/vector_clock.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace awdit;

TEST(Digraph, BasicAccounting) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  EXPECT_EQ(G.numNodes(), 4u);
  EXPECT_EQ(G.numEdges(), 3u);
  ASSERT_EQ(G.succs(0).size(), 2u);
  EXPECT_TRUE(G.succs(3).empty());
}

TEST(Scc, AcyclicGraphHasSingletonComps) {
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(0, 4);
  SccResult R = computeScc(G);
  EXPECT_TRUE(R.acyclic());
  EXPECT_EQ(R.NumComps, 5u);
}

TEST(Scc, DetectsSimpleCycle) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  SccResult R = computeScc(G);
  EXPECT_FALSE(R.acyclic());
  ASSERT_EQ(R.CyclicComps.size(), 1u);
  uint32_t C = R.CyclicComps[0];
  EXPECT_EQ(R.CompOf[0], C);
  EXPECT_EQ(R.CompOf[1], C);
  EXPECT_EQ(R.CompOf[2], C);
  EXPECT_NE(R.CompOf[3], C);
}

TEST(Scc, DetectsSelfLoop) {
  Digraph G(2);
  G.addEdge(0, 0);
  SccResult R = computeScc(G);
  EXPECT_FALSE(R.acyclic());
  ASSERT_EQ(R.CyclicComps.size(), 1u);
}

TEST(Scc, MultipleComponents) {
  Digraph G(6);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(2, 3);
  G.addEdge(3, 2);
  G.addEdge(4, 5);
  SccResult R = computeScc(G);
  EXPECT_EQ(R.CyclicComps.size(), 2u);
  EXPECT_EQ(R.NumComps, 4u);
}

TEST(Scc, ComponentNumberingIsReverseTopological) {
  // Edge 0 -> 1: component of 1 must close first (smaller Tarjan number).
  Digraph G(2);
  G.addEdge(0, 1);
  SccResult R = computeScc(G);
  EXPECT_LT(R.CompOf[1], R.CompOf[0]);
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  constexpr uint32_t N = 200000;
  Digraph G(N);
  for (uint32_t I = 0; I + 1 < N; ++I)
    G.addEdge(I, I + 1);
  SccResult R = computeScc(G);
  EXPECT_TRUE(R.acyclic());
  EXPECT_EQ(R.NumComps, N);
}

TEST(TopoSort, OrdersDag) {
  Digraph G(4);
  G.addEdge(3, 1);
  G.addEdge(1, 0);
  G.addEdge(3, 2);
  G.addEdge(2, 0);
  auto Order = topologicalSort(G);
  ASSERT_TRUE(Order);
  std::vector<uint32_t> Pos(4);
  for (uint32_t I = 0; I < 4; ++I)
    Pos[(*Order)[I]] = I;
  EXPECT_LT(Pos[3], Pos[1]);
  EXPECT_LT(Pos[1], Pos[0]);
  EXPECT_LT(Pos[3], Pos[2]);
  EXPECT_LT(Pos[2], Pos[0]);
}

TEST(TopoSort, RejectsCycle) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  EXPECT_FALSE(topologicalSort(G).has_value());
}

namespace {

/// Validates that \p Cycle is a closed walk in \p G.
void expectClosedCycle(const Digraph &G, const std::vector<CycleEdge> &Cycle) {
  ASSERT_FALSE(Cycle.empty());
  EXPECT_EQ(Cycle.back().To, Cycle.front().From);
  for (size_t I = 0; I + 1 < Cycle.size(); ++I)
    EXPECT_EQ(Cycle[I].To, Cycle[I + 1].From);
  for (const CycleEdge &E : Cycle) {
    bool Found = false;
    for (uint32_t V : G.succs(E.From))
      Found |= V == E.To;
    EXPECT_TRUE(Found) << "edge " << E.From << "->" << E.To
                       << " not in graph";
  }
}

} // namespace

TEST(ExtractCycle, FindsSelfLoop) {
  Digraph G(2);
  G.addEdge(1, 1);
  SccResult R = computeScc(G);
  ASSERT_EQ(R.CyclicComps.size(), 1u);
  std::vector<uint32_t> Nodes = {1};
  auto Cycle = extractCycle(G, R.CompOf, R.CyclicComps[0], Nodes,
                            [](uint32_t, uint32_t) { return 1u; });
  ASSERT_EQ(Cycle.size(), 1u);
  EXPECT_EQ(Cycle[0].From, 1u);
  EXPECT_EQ(Cycle[0].To, 1u);
}

TEST(ExtractCycle, PrefersCheapEdges) {
  // Two cycles through node 0: 0->1->0 (both weight 1) and
  // 0->2->3->0 (weight 1 then 0s). The 0/1-BFS should pick a cycle with
  // exactly one weight-1 edge.
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(0, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 0);
  auto Weight = [](uint32_t From, uint32_t To) -> unsigned {
    if (From == 0 && To == 1)
      return 1;
    if (From == 1 && To == 0)
      return 1;
    if (From == 0 && To == 2)
      return 1;
    return 0;
  };
  SccResult R = computeScc(G);
  ASSERT_EQ(R.CyclicComps.size(), 1u);
  std::vector<uint32_t> Nodes = {0, 1, 2, 3};
  auto Cycle = extractCycle(G, R.CompOf, R.CyclicComps[0], Nodes, Weight);
  expectClosedCycle(G, Cycle);
  unsigned Cost = 0;
  for (const CycleEdge &E : Cycle)
    Cost += Weight(E.From, E.To);
  EXPECT_EQ(Cost, 1u);
}

TEST(ExtractCycle, WorksOnAllZeroWeights) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  SccResult R = computeScc(G);
  std::vector<uint32_t> Nodes = {0, 1, 2};
  auto Cycle = extractCycle(G, R.CompOf, R.CyclicComps[0], Nodes,
                            [](uint32_t, uint32_t) { return 0u; });
  expectClosedCycle(G, Cycle);
  EXPECT_EQ(Cycle.size(), 3u);
}

TEST(ExtractCycle, RestrictsToComponent) {
  // The component {0,1} has an exit edge to 2; the cycle must stay inside.
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(1, 2);
  SccResult R = computeScc(G);
  ASSERT_EQ(R.CyclicComps.size(), 1u);
  uint32_t Comp = R.CyclicComps[0];
  std::vector<uint32_t> Nodes;
  for (uint32_t U = 0; U < 3; ++U)
    if (R.CompOf[U] == Comp)
      Nodes.push_back(U);
  auto Cycle = extractCycle(G, R.CompOf, Comp, Nodes,
                            [](uint32_t, uint32_t) { return 1u; });
  expectClosedCycle(G, Cycle);
  for (const CycleEdge &E : Cycle) {
    EXPECT_NE(E.From, 2u);
    EXPECT_NE(E.To, 2u);
  }
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock A(3), B(3);
  A.set(0, 5);
  A.set(1, 1);
  B.set(1, 7);
  B.set(2, 2);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 7u);
  EXPECT_EQ(A.get(2), 2u);
}

TEST(VectorClock, LeqOrder) {
  VectorClock A(2), B(2);
  A.set(0, 1);
  B.set(0, 2);
  B.set(1, 1);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
  EXPECT_TRUE(A.leq(A));
}

TEST(VectorClock, EqualityAndDefault) {
  VectorClock A(2), B(2);
  EXPECT_TRUE(A == B);
  B.set(1, 3);
  EXPECT_FALSE(A == B);
}

TEST(SccRandomized, AgreesWithTopoSortOnCyclicity) {
  Rng Rand(77);
  for (int Trial = 0; Trial < 50; ++Trial) {
    size_t N = 2 + Rand.nextBelow(40);
    Digraph G(N);
    size_t M = Rand.nextBelow(3 * N);
    for (size_t I = 0; I < M; ++I)
      G.addEdge(static_cast<uint32_t>(Rand.nextBelow(N)),
                static_cast<uint32_t>(Rand.nextBelow(N)));
    bool SccAcyclic = computeScc(G).acyclic();
    bool TopoOk = topologicalSort(G).has_value();
    EXPECT_EQ(SccAcyclic, TopoOk);
  }
}
