//===- tests/test_support.cpp - Support utilities tests ----------------------===//

#include "support/rng.h"
#include "support/timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace awdit;

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversDomain) {
  Rng R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    uint64_t V = R.nextInRange(5, 7);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(Rng, NextBoolExtremes) {
  Rng R(9);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng R(13);
  std::vector<double> Weights = {0.0, 1.0, 0.0};
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.nextWeighted(Weights), 1u);
}

TEST(Rng, WeightedHitsAllPositive) {
  Rng R(17);
  std::vector<double> Weights = {1.0, 2.0, 1.0};
  std::set<size_t> Seen;
  for (int I = 0; I < 300; ++I)
    Seen.insert(R.nextWeighted(Weights));
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(Rng, ZipfStaysInDomain) {
  Rng R(19);
  for (double Theta : {0.0, 0.5, 1.0, 1.5})
    for (int I = 0; I < 500; ++I)
      EXPECT_LT(R.nextZipf(37, Theta), 37u);
}

TEST(Rng, ZipfSkewsTowardLowIndices) {
  Rng R(23);
  size_t Low = 0;
  constexpr int Samples = 2000;
  for (int I = 0; I < Samples; ++I)
    if (R.nextZipf(100, 1.0) < 10)
      ++Low;
  // Uniform would put ~10% below 10; Zipf(1.0) puts roughly half.
  EXPECT_GT(Low, Samples / 4u);
}

TEST(Rng, ForkDecorrelates) {
  Rng A(31);
  Rng B = A.fork();
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer T;
  double E1 = T.elapsedSeconds();
  EXPECT_GE(E1, 0.0);
  volatile uint64_t Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  EXPECT_GE(T.elapsedSeconds(), E1);
}

TEST(Deadline, NonPositiveNeverExpires) {
  Deadline D(0.0);
  EXPECT_FALSE(D.expired());
  Deadline D2(-1.0);
  EXPECT_FALSE(D2.expired());
}

TEST(Deadline, TinyDeadlineExpires) {
  Deadline D(1e-9);
  volatile uint64_t Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  EXPECT_TRUE(D.expired());
}
