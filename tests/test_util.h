//===- tests/test_util.h - Shared test helpers --------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#ifndef AWDIT_TESTS_TEST_UTIL_H
#define AWDIT_TESTS_TEST_UTIL_H

#include "checker/checker.h"
#include "history/history_builder.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

namespace awdit::test {

/// Compact transaction spec for hand-written histories.
struct TxnSpec {
  SessionId S;
  std::vector<Operation> Ops;
  bool Abort = false;
};

/// Builds a history from transaction specs; sessions are created up to the
/// maximum session id used. Fails the test on invalid specs.
inline History makeHistory(std::initializer_list<TxnSpec> Specs) {
  HistoryBuilder B;
  SessionId MaxSession = 0;
  for (const TxnSpec &T : Specs)
    MaxSession = std::max(MaxSession, T.S);
  for (SessionId S = 0; S <= MaxSession; ++S)
    B.addSession();
  for (const TxnSpec &T : Specs) {
    TxnId Id = B.beginTxn(T.S);
    for (const Operation &Op : T.Ops)
      B.append(Id, Op);
    if (T.Abort)
      B.abortTxn(Id);
  }
  std::string Err;
  std::optional<History> H = B.build(&Err);
  EXPECT_TRUE(H.has_value()) << "history build failed: " << Err;
  return H ? std::move(*H) : History();
}

/// Shorthand operation constructors.
inline Operation R(Key K, Value V) { return Operation::read(K, V); }
inline Operation W(Key K, Value V) { return Operation::write(K, V); }

/// Checks consistency with the AWDIT facade.
inline bool consistent(const History &H, IsolationLevel Level) {
  return checkIsolation(H, Level).Consistent;
}

/// Returns true if any violation of \p Kind was reported.
inline bool hasViolation(const CheckReport &Report, ViolationKind Kind) {
  for (const Violation &V : Report.Violations)
    if (V.Kind == Kind)
      return true;
  return false;
}

} // namespace awdit::test

#endif // AWDIT_TESTS_TEST_UTIL_H
