//===- tests/test_baselines.cpp - Baseline checker behaviour --------------------===//

#include "baseline/dbcop_like.h"
#include "baseline/naive_checker.h"
#include "baseline/plume_like.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {

History bigHistory(ConsistencyMode Mode, uint64_t Seed) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = Mode;
  P.Sessions = 10;
  P.Txns = 2000;
  P.Seed = Seed;
  return generateHistory(P);
}

} // namespace

TEST(Baselines, NamesAndSupport) {
  NaiveChecker Naive;
  PlumeLikeChecker Plume;
  DbcopLikeChecker Dbcop;
  EXPECT_STREQ(Naive.name(), "Naive");
  EXPECT_STREQ(Plume.name(), "Plume-like");
  EXPECT_STREQ(Dbcop.name(), "DBCop-like");
  for (IsolationLevel Level : AllIsolationLevels) {
    EXPECT_TRUE(Naive.supports(Level));
    EXPECT_TRUE(Plume.supports(Level));
  }
  EXPECT_TRUE(Dbcop.supports(IsolationLevel::CausalConsistency));
  EXPECT_FALSE(Dbcop.supports(IsolationLevel::ReadCommitted));
  EXPECT_FALSE(Dbcop.supports(IsolationLevel::ReadAtomic));
}

TEST(Baselines, AgreeOnCleanLargeHistory) {
  History H = bigHistory(ConsistencyMode::Causal, 3);
  Deadline NoLimit(0.0);
  NaiveChecker Naive;
  PlumeLikeChecker Plume;
  DbcopLikeChecker Dbcop;
  for (IsolationLevel Level : AllIsolationLevels) {
    bool Awdit = consistent(H, Level);
    EXPECT_TRUE(Awdit);
    EXPECT_TRUE(Plume.check(H, Level, NoLimit).Consistent);
    EXPECT_TRUE(Naive.check(H, Level, NoLimit).Consistent);
  }
  EXPECT_TRUE(
      Dbcop.check(H, IsolationLevel::CausalConsistency, NoLimit).Consistent);
}

TEST(Baselines, NaiveTimesOutUnderTightDeadline) {
  History H = bigHistory(ConsistencyMode::Causal, 4);
  NaiveChecker Naive;
  BaselineResult R =
      Naive.check(H, IsolationLevel::CausalConsistency, Deadline(1e-9));
  EXPECT_TRUE(R.TimedOut);
}

TEST(Baselines, DbcopTimesOutUnderTightDeadline) {
  History H = bigHistory(ConsistencyMode::Causal, 5);
  DbcopLikeChecker Dbcop;
  BaselineResult R =
      Dbcop.check(H, IsolationLevel::CausalConsistency, Deadline(1e-9));
  EXPECT_TRUE(R.TimedOut);
}

TEST(Baselines, PlumeDetectsInconsistencyWithoutTimeout) {
  History H = makeHistory({
      {0, {W(1, 1)}},
      {0, {W(1, 2), W(2, 2)}},
      {1, {R(1, 1), R(2, 2)}},
  });
  PlumeLikeChecker Plume;
  BaselineResult R =
      Plume.check(H, IsolationLevel::ReadAtomic, Deadline(10.0));
  EXPECT_FALSE(R.TimedOut);
  EXPECT_FALSE(R.Consistent);
}

TEST(Baselines, DbcopRefusesOversizedHistories) {
  // The memory guard reports DNF instead of attempting a >1 GiB closure.
  HistoryBuilder B;
  SessionId S = B.addSession();
  for (int I = 0; I < 100000; ++I) {
    TxnId T = B.beginTxn(S);
    B.write(T, 1, I + 1);
  }
  std::optional<History> H = B.build();
  ASSERT_TRUE(H);
  DbcopLikeChecker Dbcop;
  BaselineResult R =
      Dbcop.check(*H, IsolationLevel::CausalConsistency, Deadline(0.0));
  EXPECT_TRUE(R.TimedOut);
}

TEST(Baselines, NaiveOracleMatchesHandVerdicts) {
  // Sanity anchor for the oracle itself on the paper's Fig. 4 ladder.
  History Fig4b = makeHistory({
      {0, {W(1, 1)}},
      {0, {W(1, 2), W(2, 2)}},
      {1, {R(1, 1), R(2, 2)}},
  });
  EXPECT_TRUE(naiveConsistent(Fig4b, IsolationLevel::ReadCommitted));
  EXPECT_FALSE(naiveConsistent(Fig4b, IsolationLevel::ReadAtomic));
  EXPECT_FALSE(naiveConsistent(Fig4b, IsolationLevel::CausalConsistency));

  History Fig4c = makeHistory({
      {0, {W(1, 1)}},
      {0, {W(1, 2)}},
      {1, {R(1, 2), W(2, 3)}},
      {2, {R(2, 3), R(1, 1)}},
  });
  EXPECT_TRUE(naiveConsistent(Fig4c, IsolationLevel::ReadCommitted));
  EXPECT_TRUE(naiveConsistent(Fig4c, IsolationLevel::ReadAtomic));
  EXPECT_FALSE(naiveConsistent(Fig4c, IsolationLevel::CausalConsistency));
}
