//===- tests/test_hierarchy.cpp - Isolation level strength order ---------------===//
//
// CC ⊑ RA ⊑ RC (paper §2.2): any history satisfying a stronger level
// satisfies the weaker ones. Verified on the strength predicate itself and
// as a property over randomized histories.
//
//===----------------------------------------------------------------------===//

#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

TEST(IsolationLevels, Names) {
  EXPECT_STREQ(isolationLevelName(IsolationLevel::ReadCommitted), "RC");
  EXPECT_STREQ(isolationLevelName(IsolationLevel::ReadAtomic), "RA");
  EXPECT_STREQ(isolationLevelName(IsolationLevel::CausalConsistency), "CC");
}

TEST(IsolationLevels, Parse) {
  EXPECT_EQ(parseIsolationLevel("rc"), IsolationLevel::ReadCommitted);
  EXPECT_EQ(parseIsolationLevel("RA"), IsolationLevel::ReadAtomic);
  EXPECT_EQ(parseIsolationLevel("Causal"),
            IsolationLevel::CausalConsistency);
  EXPECT_EQ(parseIsolationLevel("read-committed"),
            IsolationLevel::ReadCommitted);
  EXPECT_FALSE(parseIsolationLevel("serializable").has_value());
}

TEST(IsolationLevels, StrengthOrder) {
  using enum IsolationLevel;
  EXPECT_TRUE(isAtLeastAsStrongAs(CausalConsistency, ReadAtomic));
  EXPECT_TRUE(isAtLeastAsStrongAs(CausalConsistency, ReadCommitted));
  EXPECT_TRUE(isAtLeastAsStrongAs(ReadAtomic, ReadCommitted));
  EXPECT_TRUE(isAtLeastAsStrongAs(ReadAtomic, ReadAtomic));
  EXPECT_FALSE(isAtLeastAsStrongAs(ReadCommitted, ReadAtomic));
  EXPECT_FALSE(isAtLeastAsStrongAs(ReadAtomic, CausalConsistency));
  EXPECT_FALSE(isAtLeastAsStrongAs(ReadCommitted, CausalConsistency));
}

/// Property: verdicts are monotone along the hierarchy.
class HierarchyProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HierarchyProperty, VerdictsMonotone) {
  auto [BenchIdx, ModeIdx, Seed] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = static_cast<ConsistencyMode>(ModeIdx);
  P.Sessions = 8;
  P.Txns = 220;
  P.Seed = static_cast<uint64_t>(Seed * 101 + BenchIdx);
  History H = generateHistory(P);

  bool Cc = consistent(H, IsolationLevel::CausalConsistency);
  bool Ra = consistent(H, IsolationLevel::ReadAtomic);
  bool Rc = consistent(H, IsolationLevel::ReadCommitted);
  if (Cc) {
    EXPECT_TRUE(Ra) << "CC-consistent history must be RA-consistent";
  }
  if (Ra) {
    EXPECT_TRUE(Rc) << "RA-consistent history must be RC-consistent";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierarchyProperty,
    ::testing::Combine(::testing::Range(0, 4),   // benchmarks
                       ::testing::Range(0, 4),   // modes
                       ::testing::Range(1, 6))); // seeds

/// The strict parts of the hierarchy: witnesses that each inclusion is
/// proper (histories at exactly one boundary).
TEST(HierarchyProperty, StrictSeparations) {
  // RC but not RA (Fig. 4b).
  History RcOnly = makeHistory({
      {0, {W(1, 1)}},
      {0, {W(1, 2), W(2, 2)}},
      {1, {R(1, 1), R(2, 2)}},
  });
  EXPECT_TRUE(consistent(RcOnly, IsolationLevel::ReadCommitted));
  EXPECT_FALSE(consistent(RcOnly, IsolationLevel::ReadAtomic));

  // RA but not CC (Fig. 4c).
  History RaOnly = makeHistory({
      {0, {W(1, 1)}},
      {0, {W(1, 2)}},
      {1, {R(1, 2), W(2, 3)}},
      {2, {R(2, 3), R(1, 1)}},
  });
  EXPECT_TRUE(consistent(RaOnly, IsolationLevel::ReadAtomic));
  EXPECT_FALSE(consistent(RaOnly, IsolationLevel::CausalConsistency));
}
