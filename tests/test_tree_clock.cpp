//===- tests/test_tree_clock.cpp - Tree clock tests ----------------------------===//
//
// Differential testing of TreeClock against VectorClock on simulated
// monotone executions (sessions tick and join causal predecessors'
// clocks), the usage discipline under which tree clocks are defined.
//
//===----------------------------------------------------------------------===//

#include "graph/tree_clock.h"
#include "graph/vector_clock.h"
#include "support/rng.h"

#include <gtest/gtest.h>

using namespace awdit;

namespace {

/// A session state carrying both clock implementations in lockstep.
struct Twin {
  VectorClock Vc;
  TreeClock Tc;

  Twin(size_t K, uint32_t Self) : Vc(K), Tc(K, Self) {}

  void tick(uint32_t Self) {
    Vc.set(Self, Vc.get(Self) + 1);
    Tc.tick();
  }

  void join(const Twin &Other) {
    Vc.joinWith(Other.Vc);
    Tc.join(Other.Tc);
  }

  void expectEqual(size_t K) const {
    for (size_t S = 0; S < K; ++S)
      EXPECT_EQ(Tc.get(S), Vc.get(S)) << "entry " << S;
  }
};

} // namespace

TEST(TreeClock, StartsAtBottom) {
  TreeClock C(4, 1);
  for (size_t S = 0; S < 4; ++S)
    EXPECT_EQ(C.get(S), 0u);
  EXPECT_EQ(C.self(), 1u);
}

TEST(TreeClock, TickAdvancesOwnEntry) {
  TreeClock C(3, 2);
  C.tick();
  C.tick();
  EXPECT_EQ(C.get(2), 2u);
  EXPECT_EQ(C.get(0), 0u);
}

TEST(TreeClock, SimpleMessagePassing) {
  constexpr size_t K = 3;
  Twin A(K, 0), B(K, 1), C(K, 2);
  A.tick(0); // A: [1,0,0]
  B.tick(1); // B: [0,1,0]
  B.join(A); // B: [1,1,0]
  B.expectEqual(K);
  C.tick(2);
  C.join(B); // C: [1,1,1]
  C.expectEqual(K);
  EXPECT_EQ(C.Tc.get(0), 1u);
  EXPECT_EQ(C.Tc.get(1), 1u);
}

TEST(TreeClock, JoinIsIdempotent) {
  constexpr size_t K = 4;
  Twin A(K, 0), B(K, 1);
  A.tick(0);
  A.tick(0);
  B.tick(1);
  B.join(A);
  B.join(A);
  B.join(A);
  B.expectEqual(K);
}

TEST(TreeClock, StaleJoinIsNoOp) {
  constexpr size_t K = 3;
  Twin A(K, 0), B(K, 1);
  A.tick(0);
  B.join(A);
  A.tick(0); // A moves on.
  B.join(A); // Fresh join.
  Twin AOld(K, 0);
  AOld.tick(0); // Reconstruct A's old state.
  B.join(AOld); // Stale: must not regress anything.
  B.expectEqual(K);
  EXPECT_EQ(B.Tc.get(0), 2u);
}

TEST(TreeClock, TransitiveKnowledgeFlows) {
  constexpr size_t K = 4;
  Twin A(K, 0), B(K, 1), C(K, 2), D(K, 3);
  A.tick(0);
  B.tick(1);
  B.join(A);
  C.tick(2);
  C.join(B); // C learns A through B.
  D.tick(3);
  D.join(C); // D learns everything through C.
  D.expectEqual(K);
  EXPECT_EQ(D.Tc.get(0), 1u);
  EXPECT_EQ(D.Tc.get(1), 1u);
  EXPECT_EQ(D.Tc.get(2), 1u);
}

/// Randomized monotone executions across widths and seeds.
class TreeClockRandomized
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeClockRandomized, MatchesVectorClock) {
  auto [K, Seed] = GetParam();
  Rng Rand(static_cast<uint64_t>(Seed) * 613 + K);
  std::vector<Twin> Sessions;
  Sessions.reserve(K);
  for (int S = 0; S < K; ++S)
    Sessions.emplace_back(K, static_cast<uint32_t>(S));

  for (int Step = 0; Step < 600; ++Step) {
    uint32_t S = static_cast<uint32_t>(Rand.nextBelow(K));
    Sessions[S].tick(S);
    // Receive from up to two random peers (join their current clocks).
    size_t Joins = Rand.nextBelow(3);
    for (size_t J = 0; J < Joins; ++J) {
      uint32_t From = static_cast<uint32_t>(Rand.nextBelow(K));
      if (From != S)
        Sessions[S].join(Sessions[From]);
    }
    if (Step % 37 == 0)
      Sessions[S].expectEqual(K);
  }
  for (int S = 0; S < K; ++S)
    Sessions[S].expectEqual(K);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeClockRandomized,
                         ::testing::Combine(::testing::Values(2, 3, 5, 9,
                                                              17, 33),
                                            ::testing::Range(1, 6)));

TEST(TreeClock, JoinWorkIsSublinearForLocalizedUpdates) {
  // A wide system where only one peer's knowledge changes between joins:
  // tree clock join work should stay far below the clock width.
  constexpr size_t K = 256;
  Twin Hub(K, 0);
  std::vector<Twin> Peers;
  for (size_t S = 1; S < K; ++S)
    Peers.emplace_back(K, static_cast<uint32_t>(S));
  // Hub learns everything once.
  for (Twin &P : Peers) {
    P.tick(P.Tc.self());
    Hub.join(P);
  }
  Hub.expectEqual(K);
  // Now one peer ticks repeatedly; each join must examine O(1) entries.
  Twin &Busy = Peers.front();
  for (int Round = 0; Round < 50; ++Round) {
    Busy.tick(Busy.Tc.self());
    Hub.join(Busy);
    EXPECT_LE(Hub.Tc.lastJoinWork(), 8u);
  }
  Hub.expectEqual(K);
}
