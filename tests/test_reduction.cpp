//===- tests/test_reduction.cpp - §4 reduction property tests ------------------===//

#include "reduction/reductions.h"
#include "reduction/triangle.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

TEST(UGraph, EdgeBasics) {
  UGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 0); // duplicate, ignored
  G.addEdge(2, 2); // self loop, ignored
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_TRUE(G.hasEdge(1, 0));
  EXPECT_FALSE(G.hasEdge(2, 2));
  EXPECT_FALSE(G.hasEdge(0, 2));
  EXPECT_EQ(G.neighbors(0), std::vector<uint32_t>{1});
}

TEST(Triangle, EmptyAndSmallGraphs) {
  EXPECT_TRUE(isTriangleFree(UGraph(0)));
  EXPECT_TRUE(isTriangleFree(UGraph(3)));
  UGraph Path(3);
  Path.addEdge(0, 1);
  Path.addEdge(1, 2);
  EXPECT_TRUE(isTriangleFree(Path));
  Path.addEdge(0, 2);
  auto T = findTriangle(Path);
  ASSERT_TRUE(T);
  // Some permutation of {0, 1, 2}.
  EXPECT_EQ((*T)[0] ^ (*T)[1] ^ (*T)[2], 0u ^ 1u ^ 2u);
}

TEST(Triangle, BipartiteGraphsTriangleFree) {
  Rng Rand(5);
  for (int Trial = 0; Trial < 20; ++Trial) {
    UGraph G = randomTriangleFreeGraph(30, 0.3, Rand);
    EXPECT_TRUE(isTriangleFree(G));
  }
}

TEST(Triangle, FoundTriangleIsReal) {
  Rng Rand(6);
  for (int Trial = 0; Trial < 20; ++Trial) {
    UGraph G = randomGraph(24, 0.25, Rand);
    auto T = findTriangle(G);
    if (!T)
      continue;
    EXPECT_TRUE(G.hasEdge((*T)[0], (*T)[1]));
    EXPECT_TRUE(G.hasEdge((*T)[1], (*T)[2]));
    EXPECT_TRUE(G.hasEdge((*T)[0], (*T)[2]));
  }
}

TEST(Reductions, SizesMatchPaper) {
  // The general reduction has size O(m): per edge {a,b}, 4 writes
  // (2 per endpoint) + 4 reads, plus one self write per node.
  Rng Rand(7);
  UGraph G = randomGraph(20, 0.2, Rand);
  History H = reduceGeneral(G);
  EXPECT_EQ(H.numOps(), 8 * G.numEdges() + G.numNodes());
  EXPECT_EQ(H.numTxns(), 2 * G.numNodes());
  EXPECT_EQ(H.numSessions(), 2 * G.numNodes());

  History H2 = reduceRaTwoSessions(G);
  EXPECT_EQ(H2.numOps(), 4 * G.numEdges() + G.numNodes());
  EXPECT_EQ(H2.numSessions(), 2u);

  History H3 = reduceRcSingleSession(G);
  EXPECT_EQ(H3.numOps(), H.numOps());
  EXPECT_EQ(H3.numSessions(), 1u);
}

/// Lemma 4.2 as a property: the general reduction is consistent at every
/// level iff the graph is triangle-free.
class GeneralReductionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneralReductionProperty, ConsistencyEquivalentToTriangleFreeness) {
  auto [Seed, Density] = GetParam();
  Rng Rand(static_cast<uint64_t>(Seed) * 31 + Density);
  double P = 0.02 * Density;
  UGraph G = randomGraph(28, P, Rand);
  bool Free = isTriangleFree(G);
  History H = reduceGeneral(G);
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_EQ(consistent(H, Level), Free)
        << "level " << isolationLevelName(Level) << " n=" << G.numNodes()
        << " m=" << G.numEdges();
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneralReductionProperty,
                         ::testing::Combine(::testing::Range(1, 8),
                                            ::testing::Range(1, 8)));

/// Lemma 4.3 as a property (two sessions, RA).
class RaReductionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RaReductionProperty, RaEquivalentToTriangleFreeness) {
  auto [Seed, Density] = GetParam();
  Rng Rand(static_cast<uint64_t>(Seed) * 97 + Density);
  UGraph G = randomGraph(28, 0.02 * Density, Rand);
  History H = reduceRaTwoSessions(G);
  EXPECT_EQ(consistent(H, IsolationLevel::ReadAtomic), isTriangleFree(G));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RaReductionProperty,
                         ::testing::Combine(::testing::Range(1, 8),
                                            ::testing::Range(1, 8)));

/// Lemma 4.4 as a property (one session, RC).
class RcReductionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RcReductionProperty, RcEquivalentToTriangleFreeness) {
  auto [Seed, Density] = GetParam();
  Rng Rand(static_cast<uint64_t>(Seed) * 193 + Density);
  UGraph G = randomGraph(28, 0.02 * Density, Rand);
  History H = reduceRcSingleSession(G);
  EXPECT_EQ(consistent(H, IsolationLevel::ReadCommitted),
            isTriangleFree(G));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RcReductionProperty,
                         ::testing::Combine(::testing::Range(1, 8),
                                            ::testing::Range(1, 8)));

TEST(Reductions, GuaranteedTriangleFreeFamilies) {
  Rng Rand(11);
  for (int Trial = 0; Trial < 6; ++Trial) {
    UGraph G = randomTriangleFreeGraph(24, 0.3, Rand);
    for (IsolationLevel Level : AllIsolationLevels)
      EXPECT_TRUE(consistent(reduceGeneral(G), Level));
    EXPECT_TRUE(
        consistent(reduceRaTwoSessions(G), IsolationLevel::ReadAtomic));
    EXPECT_TRUE(consistent(reduceRcSingleSession(G),
                           IsolationLevel::ReadCommitted));
  }
}
