//===- tests/test_sim.cpp - Database simulator guarantees ----------------------===//
//
// Contract tests for the simulated databases: histories produced under a
// given consistency mode must satisfy the corresponding isolation level
// (DESIGN.md §2 substitution argument made executable).
//
//===----------------------------------------------------------------------===//

#include "history/history_stats.h"
#include "tests/test_util.h"
#include "workload/ctwitter.h"
#include "workload/generator.h"
#include "workload/random_workload.h"
#include "workload/rubis.h"
#include "workload/tpcc.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {

History simulate(Benchmark Bench, ConsistencyMode Mode, uint64_t Seed,
                 size_t Txns = 300, size_t Sessions = 8,
                 double AbortProb = 0.0) {
  GenerateParams P;
  P.Bench = Bench;
  P.Mode = Mode;
  P.Sessions = Sessions;
  P.Txns = Txns;
  P.Seed = Seed;
  P.AbortProbability = AbortProb;
  return generateHistory(P);
}

} // namespace

/// Mode guarantee sweep: benchmark x seed, one fixture per mode.
class SimModeGuarantee
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SimModeGuarantee, SerializableSatisfiesAllLevels) {
  auto [BenchIdx, Seed] = GetParam();
  History H = simulate(static_cast<Benchmark>(BenchIdx),
                       ConsistencyMode::Serializable, Seed);
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_TRUE(consistent(H, Level))
        << "level " << isolationLevelName(Level);
}

TEST_P(SimModeGuarantee, CausalSatisfiesCc) {
  auto [BenchIdx, Seed] = GetParam();
  History H = simulate(static_cast<Benchmark>(BenchIdx),
                       ConsistencyMode::Causal, Seed);
  EXPECT_TRUE(consistent(H, IsolationLevel::CausalConsistency));
}

TEST_P(SimModeGuarantee, ReadAtomicSatisfiesRa) {
  auto [BenchIdx, Seed] = GetParam();
  History H = simulate(static_cast<Benchmark>(BenchIdx),
                       ConsistencyMode::ReadAtomic, Seed);
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadAtomic));
}

TEST_P(SimModeGuarantee, ReadCommittedSatisfiesRc) {
  auto [BenchIdx, Seed] = GetParam();
  History H = simulate(static_cast<Benchmark>(BenchIdx),
                       ConsistencyMode::ReadCommitted, Seed);
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadCommitted));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimModeGuarantee,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(1, 6)));

TEST(SimDb, AbortsAreRecordedAndInvisible) {
  History H = simulate(Benchmark::Random, ConsistencyMode::Serializable,
                       /*Seed=*/3, /*Txns=*/400, /*Sessions=*/6,
                       /*AbortProb=*/0.3);
  HistoryStats S = computeStats(H);
  EXPECT_GT(S.NumAborted, 20u);
  // Aborted writes must never be read: the history stays consistent.
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_TRUE(consistent(H, Level));
}

TEST(SimDb, DeterministicForSeed) {
  History A = simulate(Benchmark::CTwitter, ConsistencyMode::Causal, 17);
  History B = simulate(Benchmark::CTwitter, ConsistencyMode::Causal, 17);
  ASSERT_EQ(A.numTxns(), B.numTxns());
  ASSERT_EQ(A.numOps(), B.numOps());
  for (TxnId Id = 0; Id < A.numTxns(); ++Id) {
    ASSERT_EQ(A.txn(Id).Ops.size(), B.txn(Id).Ops.size());
    for (size_t O = 0; O < A.txn(Id).Ops.size(); ++O)
      EXPECT_TRUE(A.txn(Id).Ops[O] == B.txn(Id).Ops[O]);
  }
}

TEST(SimDb, DifferentSeedsDiffer) {
  History A = simulate(Benchmark::CTwitter, ConsistencyMode::Causal, 1);
  History B = simulate(Benchmark::CTwitter, ConsistencyMode::Causal, 2);
  bool Differs = A.numOps() != B.numOps();
  if (!Differs) {
    for (TxnId Id = 0; Id < A.numTxns() && !Differs; ++Id)
      Differs = !(A.txn(Id).Ops == B.txn(Id).Ops);
  }
  EXPECT_TRUE(Differs);
}

TEST(SimDb, SessionCountsRespected) {
  History H = simulate(Benchmark::Tpcc, ConsistencyMode::Serializable,
                       /*Seed=*/5, /*Txns=*/200, /*Sessions=*/13);
  // 13 client sessions plus at most one synthetic init session.
  EXPECT_GE(H.numSessions(), 13u);
  EXPECT_LE(H.numSessions(), 14u);
}

TEST(SimDb, ReadCommittedModeProducesFracturesEventually) {
  // Statistical: across seeds, read-committed mode should violate RA at
  // least once (fractured reads are its signature anomaly).
  bool SawRaViolation = false;
  for (uint64_t Seed = 1; Seed <= 8 && !SawRaViolation; ++Seed) {
    History H = simulate(Benchmark::CTwitter,
                         ConsistencyMode::ReadCommitted, Seed,
                         /*Txns=*/500, /*Sessions=*/8);
    SawRaViolation = !consistent(H, IsolationLevel::ReadAtomic);
  }
  EXPECT_TRUE(SawRaViolation);
}

TEST(SimDb, ReadAtomicModeCanViolateCc) {
  // Statistical: with aggressive read-ahead over a small hot key space,
  // snapshots break causality while RA still holds by construction.
  bool SawCcViolation = false;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Rng Rand(Seed);
    RandomWorkloadParams WP;
    WP.Sessions = 6;
    WP.TotalTxns = 500;
    WP.NumKeys = 16;
    WP.MinOpsPerTxn = 3;
    WP.MaxOpsPerTxn = 6;
    ClientWorkload W = generateRandomWorkload(WP, Rand);
    SimConfig C;
    C.Mode = ConsistencyMode::ReadAtomic;
    C.Seed = Seed * 1009;
    C.ReadAheadProbability = 0.5;
    std::optional<History> H = simulateDatabase(W, C);
    ASSERT_TRUE(H);
    EXPECT_TRUE(consistent(*H, IsolationLevel::ReadAtomic));
    SawCcViolation |= !consistent(*H, IsolationLevel::CausalConsistency);
  }
  EXPECT_TRUE(SawCcViolation);
}

TEST(SimDb, CausalModeShowsStaleReads) {
  // The causal replicas should actually lag: some read observes a value
  // that is not the globally latest for its key. We detect weakness as
  // "history is not serializable-shaped": at least one read returns an
  // older version while a newer committed one exists earlier in the
  // recording order. A cheap proxy: the CC check passes but some session
  // read a key from a transaction other than the last committed writer.
  History H = simulate(Benchmark::Random, ConsistencyMode::Causal,
                       /*Seed=*/9, /*Txns=*/500, /*Sessions=*/10);
  EXPECT_TRUE(consistent(H, IsolationLevel::CausalConsistency));
}

TEST(Workloads, CTwitterAveragesNearPaperFigure) {
  Rng Rand(1);
  CTwitterParams P;
  P.Sessions = 10;
  P.TotalTxns = 4000;
  ClientWorkload W = generateCTwitter(P, Rand);
  double Avg = static_cast<double>(W.numOps()) /
               static_cast<double>(W.numTxns());
  // The paper reports ~7.6 ops per transaction for C-Twitter.
  EXPECT_GT(Avg, 6.5);
  EXPECT_LT(Avg, 8.7);
}

TEST(Workloads, TxnCountsExact) {
  Rng Rand(2);
  RandomWorkloadParams RP;
  RP.Sessions = 4;
  RP.TotalTxns = 123;
  EXPECT_EQ(generateRandomWorkload(RP, Rand).numTxns(), 123u);

  TpccParams TP;
  TP.Sessions = 4;
  TP.TotalTxns = 77;
  EXPECT_EQ(generateTpcc(TP, Rand).numTxns(), 77u);

  RubisParams UP;
  UP.Sessions = 4;
  UP.TotalTxns = 55;
  EXPECT_EQ(generateRubis(UP, Rand).numTxns(), 55u);
}

TEST(Workloads, RandomWorkloadRespectsTxnSize) {
  Rng Rand(3);
  RandomWorkloadParams P;
  P.Sessions = 3;
  P.TotalTxns = 50;
  P.MinOpsPerTxn = 7;
  P.MaxOpsPerTxn = 7;
  ClientWorkload W = generateRandomWorkload(P, Rand);
  for (const ClientSession &S : W.Sessions)
    for (const ClientTxn &T : S.Txns)
      EXPECT_EQ(T.Ops.size(), 7u);
}

TEST(Workloads, BenchmarkNamesRoundTrip) {
  for (int I = 0; I < 4; ++I) {
    Benchmark B = static_cast<Benchmark>(I);
    EXPECT_EQ(parseBenchmark(benchmarkName(B)), B);
  }
  EXPECT_FALSE(parseBenchmark("ycsb").has_value());
}
