//===- tests/test_token_util.cpp - Tokenizer and parseInt battery -----------===//
//
// Locks the ingest fast path's contract:
//
//  - parseInt()/nextInt() keep std::from_chars strictness bit for bit —
//    leading '+', overflow at exactly INT64_MAX / UINT64_MAX + 1, empty
//    tokens, and a lone '-' all behave as the pre-fast-path parser did.
//  - The SIMD scanners and the always-compiled scalar SWAR fallback are
//    interchangeable: on random byte soup and random valid lines they
//    must produce identical token spans and identical decode results, and
//    a chunked pipeline run must not care which one was active or where
//    the chunk boundaries fell.
//
//===----------------------------------------------------------------------===//

#include "checker/monitor.h"
#include "io/sharded_ingest.h"
#include "io/stream_parser.h"
#include "io/token_util.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

using namespace awdit;

namespace {

/// Restores the tokenizer dispatch on scope exit so a failing test cannot
/// leave the process on the scalar path.
struct SimdGuard {
  ~SimdGuard() { io::setSimdTokenizer(true); }
};

template <typename IntT>
void expectParse(std::string_view Token, bool Ok, IntT Expected = 0) {
  IntT Via = static_cast<IntT>(~Expected); // poison
  EXPECT_EQ(io::parseInt(Token, Via), Ok) << "parseInt('" << Token << "')";
  if (Ok) {
    EXPECT_EQ(Via, Expected) << "parseInt('" << Token << "')";
  }

  // An empty token cannot be embedded in a line — the space-separated
  // variants below would just collapse around it.
  if (Token.empty())
    return;

  // The fused cursor paths must agree with parseInt exactly, both as the
  // only token and mid-line (word fast path vs line-tail path).
  for (std::string Line : {std::string(Token),
                           std::string(Token) + " 1",
                           "1 " + std::string(Token)}) {
    io::TokenCursor C(Line);
    if (Line.front() == '1' && Line[1] == ' ') {
      IntT Skip;
      ASSERT_TRUE(C.nextInt(Skip));
    }
    IntT Got = static_cast<IntT>(~Expected);
    EXPECT_EQ(C.nextInt(Got), Ok) << "nextInt('" << Token << "') in '"
                                  << Line << "'";
    if (Ok) {
      EXPECT_EQ(Got, Expected) << "nextInt('" << Token << "') in '" << Line
                               << "'";
    }
  }
  for (std::string Line : {std::string(Token),
                           std::string(Token) + ",1",
                           "1," + std::string(Token)}) {
    io::CsvCursor C(Line);
    if (Line.front() == '1' && Line[1] == ',') {
      IntT Skip;
      ASSERT_TRUE(C.nextInt(Skip));
    }
    IntT Got = static_cast<IntT>(~Expected);
    EXPECT_EQ(C.nextInt(Got), Ok) << "csv nextInt('" << Token << "') in '"
                                  << Line << "'";
    if (Ok) {
      EXPECT_EQ(Got, Expected) << "csv nextInt('" << Token << "') in '"
                               << Line << "'";
    }
  }
}

} // namespace

TEST(ParseInt, PlainDigits) {
  expectParse<uint64_t>("0", true, 0);
  expectParse<uint64_t>("7", true, 7);
  expectParse<uint64_t>("1234567", true, 1234567);
  expectParse<uint64_t>("12345678", true, 12345678);
  expectParse<uint64_t>("123456789012345", true, 123456789012345ull);
  expectParse<int64_t>("42", true, 42);
  // Leading zeros are plain digits to from_chars, so they stay accepted.
  expectParse<uint64_t>("007", true, 7);
}

TEST(ParseInt, LeadingPlusRejected) {
  // std::from_chars never accepted '+'; the fast path must not start.
  expectParse<uint64_t>("+5", false);
  expectParse<int64_t>("+5", false);
  expectParse<int64_t>("+", false);
}

TEST(ParseInt, NegativeNumbers) {
  // Signed targets keep from_chars' '-' handling; unsigned reject it.
  expectParse<int64_t>("-5", true, -5);
  expectParse<int64_t>("-0", true, 0);
  expectParse<uint64_t>("-5", false);
}

TEST(ParseInt, OverflowAtExactBoundary) {
  expectParse<int64_t>("9223372036854775807", true,
                       std::numeric_limits<int64_t>::max());
  expectParse<int64_t>("9223372036854775808", false);
  expectParse<int64_t>("-9223372036854775808", true,
                       std::numeric_limits<int64_t>::min());
  expectParse<int64_t>("-9223372036854775809", false);
  expectParse<uint64_t>("18446744073709551615", true,
                        std::numeric_limits<uint64_t>::max());
  expectParse<uint64_t>("18446744073709551616", false);
  expectParse<uint32_t>("4294967295", true,
                        std::numeric_limits<uint32_t>::max());
  expectParse<uint32_t>("4294967296", false);
}

TEST(ParseInt, EmptyToken) {
  uint64_t V = 99;
  EXPECT_FALSE(io::parseInt(std::string_view(), V));
  expectParse<uint64_t>("", false);
}

TEST(ParseInt, LoneMinus) {
  expectParse<int64_t>("-", false);
  expectParse<uint64_t>("-", false);
}

TEST(ParseInt, TrailingGarbageRejected) {
  expectParse<uint64_t>("12x", false);
  expectParse<uint64_t>("x12", false);
  expectParse<uint64_t>("1.5", false);
  expectParse<uint64_t>("0x10", false);
}

//===----------------------------------------------------------------------===//
// SIMD vs scalar equivalence.
//===----------------------------------------------------------------------===//

namespace {

/// Token spans of one line as (offset, length) pairs under the currently
/// selected scanner implementation.
std::vector<std::pair<size_t, size_t>> spansOf(std::string_view Line) {
  std::vector<std::pair<size_t, size_t>> Spans;
  io::TokenCursor C(Line);
  for (std::string_view T = C.next(); !T.empty(); T = C.next())
    Spans.emplace_back(static_cast<size_t>(T.data() - Line.data()),
                       T.size());
  return Spans;
}

void expectSameEvent(const LineEvent &A, const LineEvent &B,
                     const std::string &Context) {
  EXPECT_EQ(A.Kind, B.Kind) << Context;
  EXPECT_EQ(A.Session, B.Session) << Context;
  EXPECT_EQ(A.Num, B.Num) << Context;
  EXPECT_EQ(A.K, B.K) << Context;
  EXPECT_EQ(A.V, B.V) << Context;
  EXPECT_EQ(A.Flag, B.Flag) << Context;
  EXPECT_EQ(A.Error, B.Error) << Context;
}

/// A seeded mix of valid-looking history lines and raw byte soup,
/// including separators, signs, long digit runs, and high bytes.
std::string randomSoup(std::mt19937_64 &Rng, size_t Bytes) {
  static const char Alphabet[] =
      "0123456789 \t\nbrwcat#,-+xyz\x01\x7f\x80\xff";
  std::string S;
  S.reserve(Bytes);
  while (S.size() < Bytes) {
    if (Rng() % 4 == 0) {
      // A plausible native/dbcop/plume fragment.
      switch (Rng() % 5) {
      case 0:
        S += "b " + std::to_string(Rng() % 100) + "\n";
        break;
      case 1:
        S += "w " + std::to_string(Rng() % 1000000) + " " +
             std::to_string(Rng()) + "\n";
        break;
      case 2:
        S += "r\t" + std::to_string(Rng() % 97) + "  " +
             std::to_string(Rng() % 1000) + "\n";
        break;
      case 3:
        S += std::to_string(Rng() % 50) + "," + std::to_string(Rng() % 50) +
             ",w," + std::to_string(Rng() % 1000) + "," +
             std::to_string(Rng()) + "\n";
        break;
      default:
        S += "c\n";
        break;
      }
    } else {
      size_t N = 1 + Rng() % 24;
      for (size_t I = 0; I < N; ++I)
        S += Alphabet[Rng() % (sizeof(Alphabet) - 1)];
    }
  }
  return S;
}

std::vector<std::string_view> linesOf(std::string_view Text) {
  std::vector<std::string_view> Lines;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string_view::npos) {
      Lines.push_back(Text.substr(Pos));
      break;
    }
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

} // namespace

TEST(TokenizerFuzz, SimdAndScalarProduceIdenticalSpansAndDecodes) {
  SimdGuard Guard;
  std::mt19937_64 Rng(0x70CE17u); // fixed seed: failures must reproduce
  for (int Iter = 0; Iter < 40; ++Iter) {
    std::string Soup = randomSoup(Rng, 300 + Rng() % 700);
    for (std::string_view Line : linesOf(Soup)) {
      io::setSimdTokenizer(true);
      auto SimdSpans = spansOf(Line);
      LineEvent SimdNative = decodeNativeLine(Line);
      LineEvent SimdPlume = decodePlumeLine(Line);
      LineEvent SimdDbcop = decodeDbcopLine(Line);

      io::setSimdTokenizer(false);
      auto ScalarSpans = spansOf(Line);
      LineEvent ScalarNative = decodeNativeLine(Line);
      LineEvent ScalarPlume = decodePlumeLine(Line);
      LineEvent ScalarDbcop = decodeDbcopLine(Line);

      std::string Context =
          "iter " + std::to_string(Iter) + " line '" + std::string(Line) +
          "'";
      EXPECT_EQ(SimdSpans, ScalarSpans) << Context;
      expectSameEvent(SimdNative, ScalarNative, Context + " [native]");
      expectSameEvent(SimdPlume, ScalarPlume, Context + " [plume]");
      expectSameEvent(SimdDbcop, ScalarDbcop, Context + " [dbcop]");
    }
  }
}

/// Scanner equivalence position by position: every scan primitive agrees
/// between implementations from every starting offset of random buffers.
TEST(TokenizerFuzz, ScannersAgreeAtEveryOffset) {
  SimdGuard Guard;
  std::mt19937_64 Rng(0x5EEDu);
  for (int Iter = 0; Iter < 20; ++Iter) {
    std::string Soup = randomSoup(Rng, 200);
    std::string_view V = Soup;
    for (size_t Pos = 0; Pos <= V.size(); ++Pos) {
      io::setSimdTokenizer(true);
      size_t ToSep = io::scanToSeparator(V, Pos);
      size_t PastSep = io::scanPastSeparators(V, Pos);
      size_t ToNl = io::scanToNewline(V, Pos);
      io::setSimdTokenizer(false);
      EXPECT_EQ(ToSep, io::scanToSeparator(V, Pos)) << "pos " << Pos;
      EXPECT_EQ(PastSep, io::scanPastSeparators(V, Pos)) << "pos " << Pos;
      EXPECT_EQ(ToNl, io::scanToNewline(V, Pos)) << "pos " << Pos;
    }
  }
}

/// End to end: a chunked pipeline run must not care which scanner was
/// active or where the chunk boundaries fell — same error, same cursor,
/// same stats (the chunking-invariance pattern of test_sharded_monitor,
/// pointed at the tokenizer dispatch).
TEST(TokenizerFuzz, ChunkedPipelineInvariantUnderDispatch) {
  SimdGuard Guard;
  std::mt19937_64 Rng(0xCAFEu);
  for (int Iter = 0; Iter < 6; ++Iter) {
    // A valid prefix followed by soup: the pipeline decodes real lines,
    // then fails on garbage — the failure line and text must agree too.
    std::string Text;
    for (int S = 0; S < 4; ++S) {
      Text += "b " + std::to_string(S) + "\n";
      for (int O = 0; O < 8; ++O)
        Text += "w " + std::to_string(1 + Rng() % 64) + " " +
                std::to_string(1 + Iter * 1000 + S * 100 + O) + "\n";
      Text += "c\n";
    }
    if (Iter % 2 == 1)
      Text += randomSoup(Rng, 120);

    struct Outcome {
      ShardedMonitorIngest::EndState End;
      std::string Error;
      uint64_t Offset, LineNo, Txns;
      bool operator==(const Outcome &O) const {
        // The error text pins the failure position; the post-error cursor
        // depends on how many bytes the feed loop pushed before noticing
        // the (asynchronous) failure, so only compare it on clean runs.
        if (End != O.End || Error != O.Error || Txns != O.Txns)
          return false;
        return !Error.empty() || (Offset == O.Offset && LineNo == O.LineNo);
      }
    };
    auto Run = [&](bool Simd, unsigned Threads, size_t Chunk) {
      io::setSimdTokenizer(Simd);
      MonitorOptions Options;
      Options.Level = IsolationLevel::CausalConsistency;
      Options.CheckIntervalTxns = 16;
      Monitor M(Options);
      ShardedMonitorIngest Ingest(M, "native", Threads);
      for (size_t Pos = 0; Pos < Text.size(); Pos += Chunk)
        if (!Ingest.feed(std::string_view(Text).substr(Pos, Chunk)))
          break;
      Outcome O;
      O.End = Ingest.finishStream();
      O.Error = Ingest.errorText();
      O.Offset = Ingest.streamOffset();
      O.LineNo = Ingest.lineNumber();
      O.Txns = M.stats().IngestedTxns;
      return O;
    };

    Outcome Ref = Run(true, 0, 4096);
    for (unsigned Threads : {0u, 2u})
      for (size_t Chunk : {1ul, 7ul, 333ul})
        for (bool Simd : {true, false}) {
          Outcome Got = Run(Simd, Threads, Chunk);
          EXPECT_TRUE(Ref == Got)
              << "iter " << Iter << " threads " << Threads << " chunk "
              << Chunk << " simd " << Simd << " — ref error '" << Ref.Error
              << "' line " << Ref.LineNo << ", got error '" << Got.Error
              << "' line " << Got.LineNo;
        }
  }
}
