//===- tests/test_thread_pool.cpp - Work-stealing thread pool tests ----------===//
//
// Coverage for the parallel engine's substrate: task execution and results,
// exception propagation through futures and parallelFor, nested submission
// and nested parallel loops (the deadlock-prone cases), and the chunk
// partition guarantees the checkers' merge order relies on.
//
//===----------------------------------------------------------------------===//

#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

using namespace awdit;

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool Pool(4);
  std::future<int> F = Pool.submit([] { return 6 * 7; });
  EXPECT_EQ(F.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool Pool;
  EXPECT_EQ(Pool.numThreads(), ThreadPool::defaultThreads());
  EXPECT_GE(Pool.numThreads(), 1u);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 1000; ++I)
    Futures.push_back(Pool.submit([&Counter] { ++Counter; }));
  for (std::future<void> &F : Futures)
    F.get();
  EXPECT_EQ(Counter.load(), 1000);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Counter] { ++Counter; });
    // No waiting: the destructor must run everything before joining.
  }
  EXPECT_EQ(Counter.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool Pool(2);
  std::future<int> F =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(F.get(), std::runtime_error);
  // The pool must survive a throwing task.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(0, N, 64, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      ++Hits[I];
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForChunksRespectGrainPartition) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000, Grain = 128;
  std::mutex M;
  std::vector<std::pair<size_t, size_t>> Chunks;
  Pool.parallelFor(0, N, Grain, [&](size_t Begin, size_t End) {
    std::lock_guard<std::mutex> L(M);
    Chunks.push_back({Begin, End});
  });
  // Chunks must tile [0, N) on grain boundaries: the checkers map
  // Begin / Grain to a result slot and merge in slot order.
  std::sort(Chunks.begin(), Chunks.end());
  ASSERT_EQ(Chunks.size(), (N + Grain - 1) / Grain);
  size_t Expected = 0;
  for (auto [Begin, End] : Chunks) {
    EXPECT_EQ(Begin, Expected);
    EXPECT_EQ(Begin % Grain, 0u);
    EXPECT_LE(End - Begin, Grain);
    Expected = End;
  }
  EXPECT_EQ(Expected, N);
}

TEST(ThreadPool, ParallelForRethrowsChunkException) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  EXPECT_THROW(
      Pool.parallelFor(0, 1000, 10,
                       [&](size_t Begin, size_t) {
                         ++Ran;
                         if (Begin == 500)
                           throw std::logic_error("chunk failed");
                       }),
      std::logic_error);
  // Cancellation is best-effort, but the loop must have quiesced: running
  // more chunks than exist would mean double execution.
  EXPECT_LE(Ran.load(), 100);
  // The pool stays usable.
  EXPECT_EQ(Pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, NestedSubmissionFromWorker) {
  ThreadPool Pool(4);
  std::future<int> Outer = Pool.submit([&Pool] {
    std::future<int> Inner = Pool.submit([] { return 10; });
    return Inner.get() + 1;
  });
  EXPECT_EQ(Outer.get(), 11);
}

TEST(ThreadPool, NestedParallelFor) {
  ThreadPool Pool(4);
  constexpr size_t Rows = 40, Cols = 100;
  std::vector<std::atomic<uint64_t>> RowSums(Rows);
  Pool.parallelFor(0, Rows, 1, [&](size_t Begin, size_t End) {
    for (size_t R = Begin; R < End; ++R) {
      Pool.parallelFor(0, Cols, 8, [&, R](size_t B, size_t E) {
        uint64_t Local = 0;
        for (size_t C = B; C < E; ++C)
          Local += R * C;
        RowSums[R] += Local;
      });
    }
  });
  for (size_t R = 0; R < Rows; ++R)
    EXPECT_EQ(RowSums[R].load(), R * (Cols * (Cols - 1) / 2));
}

TEST(ThreadPool, ParallelForFromManyWorkersConcurrently) {
  // The stress shape of the batch CLI: many tasks, each running its own
  // parallelFor on the same pool.
  ThreadPool Pool(4);
  std::atomic<uint64_t> Total{0};
  std::vector<std::future<void>> Futures;
  for (int T = 0; T < 16; ++T)
    Futures.push_back(Pool.submit([&] {
      Pool.parallelFor(0, 500, 16, [&](size_t Begin, size_t End) {
        Total += End - Begin;
      });
    }));
  for (std::future<void> &F : Futures)
    F.get();
  EXPECT_EQ(Total.load(), 16u * 500u);
}

TEST(ThreadPool, EmptyAndSingleChunkRanges) {
  ThreadPool Pool(2);
  int Calls = 0;
  Pool.parallelFor(5, 5, 10, [&](size_t, size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  Pool.parallelFor(0, 3, 10, [&](size_t Begin, size_t End) {
    ++Calls;
    EXPECT_EQ(Begin, 0u);
    EXPECT_EQ(End, 3u);
  });
  EXPECT_EQ(Calls, 1);
}
