//===- tests/test_sharded_monitor.cpp - Sharded ingest equivalence ----------===//
//
// The acceptance battery of the multi-core sharded monitor pipeline
// (io/sharded_ingest.h): driving the same byte stream through the pipeline
// with any thread count must produce output bit-identical to the legacy
// single-threaded path — the same finalize report, the same violation
// stream in the same order with the same rendered descriptions, at every
// flush cadence and window size, on clean and anomaly-injected histories
// and in all three input formats. These tests are also the core workload
// of the CI ThreadSanitizer job.
//
//===----------------------------------------------------------------------===//

#include "checker/checkpoint.h"
#include "checker/monitor.h"
#include "checker/stats_snapshot.h"
#include "checker/violation_sink.h"
#include "io/dbcop_format.h"
#include "io/plume_format.h"
#include "io/sharded_ingest.h"
#include "io/text_format.h"
#include "sim/anomaly_injector.h"
#include "support/serialize.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

using namespace awdit;
using namespace awdit::test;

namespace {

/// Everything one pipeline run produces that a user can observe.
struct RunResult {
  CheckReport Report;
  std::vector<Violation> Streamed;
  std::vector<std::string> Descriptions;
  MonitorStats Stats;
  std::string Error;
  ShardedMonitorIngest::EndState End =
      ShardedMonitorIngest::EndState::Clean;
};

/// Feeds \p Text through the sharded pipeline with \p Threads extra
/// threads, in uneven chunks so batch and chunk boundaries never align.
RunResult runPipeline(const std::string &Text, const std::string &Format,
                      unsigned Threads, const MonitorOptions &Options,
                      size_t ChunkSize = 7777) {
  RunResult R;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  ShardedMonitorIngest Ingest(M, Format, Threads);
  EXPECT_TRUE(Ingest.valid());
  for (size_t Pos = 0; Pos < Text.size(); Pos += ChunkSize)
    if (!Ingest.feed(std::string_view(Text).substr(Pos, ChunkSize)))
      break;
  R.End = Ingest.finishStream();
  R.Error = Ingest.errorText();
  R.Report = M.finalize();
  R.Stats = M.stats();
  R.Streamed = std::move(Sink.Violations);
  R.Descriptions = std::move(Sink.Descriptions);
  return R;
}

void expectSameViolation(const Violation &X, const Violation &Y,
                         const std::string &Context) {
  EXPECT_EQ(X.Kind, Y.Kind) << Context;
  EXPECT_EQ(X.T, Y.T) << Context;
  EXPECT_EQ(X.OpIndex, Y.OpIndex) << Context;
  EXPECT_EQ(X.Other, Y.Other) << Context;
  ASSERT_EQ(X.Cycle.size(), Y.Cycle.size()) << Context;
  for (size_t E = 0; E < X.Cycle.size(); ++E) {
    EXPECT_EQ(X.Cycle[E].From, Y.Cycle[E].From) << Context;
    EXPECT_EQ(X.Cycle[E].To, Y.Cycle[E].To) << Context;
    EXPECT_EQ(X.Cycle[E].Kind, Y.Cycle[E].Kind) << Context;
  }
}

/// The bit-identity oracle: every observable of \p Got must equal the
/// single-threaded reference \p Want.
void expectSameRun(const RunResult &Want, const RunResult &Got,
                   const std::string &Context) {
  EXPECT_EQ(Want.End, Got.End) << Context;
  EXPECT_EQ(Want.Error, Got.Error) << Context;
  EXPECT_EQ(Want.Report.Consistent, Got.Report.Consistent) << Context;
  ASSERT_EQ(Want.Report.Violations.size(), Got.Report.Violations.size())
      << Context;
  for (size_t I = 0; I < Want.Report.Violations.size(); ++I)
    expectSameViolation(Want.Report.Violations[I], Got.Report.Violations[I],
                        Context + " report violation " + std::to_string(I));
  ASSERT_EQ(Want.Streamed.size(), Got.Streamed.size()) << Context;
  for (size_t I = 0; I < Want.Streamed.size(); ++I)
    expectSameViolation(Want.Streamed[I], Got.Streamed[I],
                        Context + " streamed violation " + std::to_string(I));
  EXPECT_EQ(Want.Descriptions, Got.Descriptions) << Context;
  EXPECT_EQ(Want.Report.Stats.InferredEdges, Got.Report.Stats.InferredEdges)
      << Context;
  EXPECT_EQ(Want.Report.Stats.GraphEdges, Got.Report.Stats.GraphEdges)
      << Context;
  EXPECT_EQ(Want.Stats.IngestedTxns, Got.Stats.IngestedTxns) << Context;
  EXPECT_EQ(Want.Stats.IngestedOps, Got.Stats.IngestedOps) << Context;
  EXPECT_EQ(Want.Stats.CommittedTxns, Got.Stats.CommittedTxns) << Context;
  EXPECT_EQ(Want.Stats.Flushes, Got.Stats.Flushes) << Context;
  EXPECT_EQ(Want.Stats.ReportedViolations, Got.Stats.ReportedViolations)
      << Context;
  EXPECT_EQ(Want.Stats.EvictedTxns, Got.Stats.EvictedTxns) << Context;
  EXPECT_EQ(Want.Stats.Compactions, Got.Stats.Compactions) << Context;
}

History generated(int BenchIdx, int Seed, size_t Txns = 800) {
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 6;
  P.Txns = Txns;
  P.Seed = static_cast<uint64_t>(Seed);
  P.AbortProbability = 0.05;
  return generateHistory(P);
}

} // namespace

/// Clean histories: level x cadence x window, threads 2 and 4 vs 1.
class ShardedEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ShardedEquivalence, MatchesSingleThreadedMonitor) {
  auto [LevelIdx, Interval, Window] = GetParam();
  History H = generated(LevelIdx % 4, LevelIdx * 17 + Interval + Window);
  std::string Text = writeTextHistory(H);

  MonitorOptions Options;
  Options.Level = static_cast<IsolationLevel>(LevelIdx);
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = static_cast<size_t>(Interval);
  Options.WindowTxns = static_cast<size_t>(Window);

  RunResult Reference = runPipeline(Text, "native", 1, Options);
  for (unsigned Threads : {2u, 4u}) {
    RunResult Sharded = runPipeline(Text, "native", Threads, Options);
    expectSameRun(Reference, Sharded,
                  "level " + std::to_string(LevelIdx) + " interval " +
                      std::to_string(Interval) + " window " +
                      std::to_string(Window) + " threads " +
                      std::to_string(Threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardedEquivalence,
    ::testing::Combine(::testing::Range(0, 3),          // isolation level
                       ::testing::Values(1, 17, 128),   // flush cadence
                       ::testing::Values(0, 64)));      // window size

/// Injected histories: every anomaly kind must stream the identical
/// violation sequence through the sharded pipeline.
class ShardedEquivalenceInjected
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShardedEquivalenceInjected, MatchesSingleThreadedMonitor) {
  auto [KindIdx, Interval] = GetParam();
  History Base = generated(0, KindIdx * 29 + Interval, 600);
  std::string Err;
  std::optional<History> H = injectAnomaly(
      Base, static_cast<AnomalyKind>(KindIdx),
      static_cast<uint64_t>(KindIdx * 5 + 3), &Err);
  ASSERT_TRUE(H) << Err;
  std::string Text = writeTextHistory(*H);

  for (IsolationLevel Level : AllIsolationLevels) {
    MonitorOptions Options;
    Options.Level = Level;
    Options.Check.Threads = 1;
    Options.CheckIntervalTxns = static_cast<size_t>(Interval);
    RunResult Reference = runPipeline(Text, "native", 1, Options);
    RunResult Sharded = runPipeline(Text, "native", 4, Options);
    expectSameRun(Reference, Sharded,
                  std::string(anomalyKindName(
                      static_cast<AnomalyKind>(KindIdx))) +
                      " level " + isolationLevelName(Level) + " interval " +
                      std::to_string(Interval));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardedEquivalenceInjected,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(1, 64)));

/// Foreign formats flow through the same pipeline: the plume pair-close
/// and dbcop block state machines run on the applier thread.
TEST(ShardedIngest, ForeignFormatsMatchSingleThreaded) {
  History H = generated(1, 77, 500);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 32;

  for (auto [Format, Text] :
       {std::pair<std::string, std::string>{"plume", writePlumeHistory(H)},
        std::pair<std::string, std::string>{"dbcop",
                                            writeDbcopHistory(H)}}) {
    RunResult Reference = runPipeline(Text, Format, 1, Options);
    RunResult Sharded = runPipeline(Text, Format, 3, Options);
    expectSameRun(Reference, Sharded, "format " + Format);
  }
}

/// Chunk boundaries must not matter, threaded or not (the pipeline cuts
/// its own batches at line granularity).
TEST(ShardedIngest, ChunkingInvariant) {
  History H = generated(2, 123, 400);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadAtomic;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 16;
  RunResult Reference = runPipeline(Text, "native", 1, Options, Text.size());
  for (size_t Chunk : {1ul, 13ul, 4096ul})
    for (unsigned Threads : {1u, 3u}) {
      RunResult Got = runPipeline(Text, "native", Threads, Options, Chunk);
      expectSameRun(Reference, Got,
                    "chunk " + std::to_string(Chunk) + " threads " +
                        std::to_string(Threads));
    }
}

/// Parse errors surface with the same line number from any thread count,
/// and everything before the error is still checked.
TEST(ShardedIngest, ErrorsCarryLineNumbersAcrossThreadCounts) {
  std::string Text = "b 0\nw 1 10\nc\nb 0\nw 1 10\nc\n"; // duplicate write
  for (unsigned Threads : {1u, 4u}) {
    MonitorOptions Options;
    Options.Level = IsolationLevel::ReadCommitted;
    Monitor M(Options);
    ShardedMonitorIngest Ingest(M, "native", Threads);
    Ingest.feed(Text);
    EXPECT_EQ(Ingest.finishStream(), ShardedMonitorIngest::EndState::Error);
    EXPECT_NE(Ingest.errorText().find("line 5"), std::string::npos)
        << Ingest.errorText();
    EXPECT_NE(Ingest.errorText().find("duplicate write"), std::string::npos)
        << Ingest.errorText();
  }
}

/// A truncated stream reports the open transaction instead of failing, at
/// any thread count; the unterminated trailing line is still applied.
TEST(ShardedIngest, OpenTxnAtEofReported) {
  std::string Text = "b 0\nw 1 10\nc\nb 0\nr 1 10"; // no newline, no close
  for (unsigned Threads : {1u, 3u}) {
    MonitorOptions Options;
    Options.Level = IsolationLevel::ReadCommitted;
    Monitor M(Options);
    ShardedMonitorIngest Ingest(M, "native", Threads);
    Ingest.feed(Text);
    EXPECT_EQ(Ingest.finishStream(), ShardedMonitorIngest::EndState::OpenTxn);
    EXPECT_EQ(Ingest.committedTxns(), 1u);
    EXPECT_EQ(Ingest.lineNumber(), 5u);
    EXPECT_EQ(Ingest.streamOffset(), Text.size());
    CheckReport Report = M.finalize();
    EXPECT_TRUE(Report.Consistent);
  }
}

/// The speculative checking offload (PR 6) must actually fire on a plain
/// multi-threaded run — and adopting speculative rows must not perturb a
/// single observable.
TEST(ShardedIngest, SpeculationAdoptsRowsAndStaysBitIdentical) {
  History H = generated(0, 9, 1200);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 64; // batches well above the speculation floor
  RunResult Reference = runPipeline(Text, "native", 1, Options);

  RunResult Sharded;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  ShardedMonitorIngest Ingest(M, "native", 4);
  ASSERT_TRUE(Ingest.valid());
  for (size_t Pos = 0; Pos < Text.size(); Pos += 7777)
    if (!Ingest.feed(std::string_view(Text).substr(Pos, 7777)))
      break;
  Sharded.End = Ingest.finishStream();
  Sharded.Error = Ingest.errorText();
  Sharded.Report = M.finalize();
  Sharded.Stats = M.stats();
  Sharded.Streamed = std::move(Sink.Violations);
  Sharded.Descriptions = std::move(Sink.Descriptions);

  // The pipeline installed a pool, the flushes were big enough: speculative
  // rows were computed and (the common case on a clean history) adopted.
  EXPECT_GT(M.speculationAdoptedRows(), 0u);
  expectSameRun(Reference, Sharded, "speculation adoption");
}

namespace {

/// One byte-exact observable bundle: the JSONL violation stream and the
/// end-of-run summary, exactly as `awdit monitor --json` would print them.
struct FuzzRun {
  std::string Jsonl;
  std::string Summary;
  ShardedMonitorIngest::EndState End = ShardedMonitorIngest::EndState::Clean;
};

/// A resumable cut: the checkpoint blob plus how many JSONL bytes had been
/// emitted when it was taken.
struct FuzzSnapshot {
  std::string Blob;
  CheckpointMeta Meta;
  size_t JsonlBytesAtCheckpoint = 0;
};

/// Runs \p Text uninterrupted with \p Threads, optionally capturing a
/// checkpoint at every flush boundary.
FuzzRun runFuzz(const std::string &Text, const std::string &Format,
                const MonitorOptions &Options, unsigned Threads,
                std::vector<FuzzSnapshot> *Snapshots = nullptr) {
  FuzzRun R;
  std::ostringstream Out;
  JsonLinesSink Sink(Out);
  Monitor M(Options, &Sink);
  ShardedMonitorIngest::FlushHook Hook;
  if (Snapshots)
    Hook = [&](const IngestFlushPoint &P) {
      FuzzSnapshot S;
      S.Meta.Format = Format;
      S.Meta.Options = Options;
      S.Meta.StreamOffset = P.StreamOffset;
      S.Meta.LineNo = P.LineNo;
      S.Meta.CommittedTxns = P.CommittedTxns;
      S.Meta.Flushes = P.Flushes;
      std::string MachineBlob;
      ByteWriter W(MachineBlob);
      P.Machine.saveState(W);
      S.Blob = encodeCheckpoint(P.M, MachineBlob, S.Meta);
      S.JsonlBytesAtCheckpoint = Out.str().size();
      Snapshots->push_back(std::move(S));
    };
  ShardedMonitorIngest Ingest(M, Format, Threads, std::move(Hook));
  EXPECT_TRUE(Ingest.valid());
  for (size_t Pos = 0; Pos < Text.size(); Pos += 4096)
    if (!Ingest.feed(std::string_view(Text).substr(Pos, 4096)))
      break;
  R.End = Ingest.finishStream();
  EXPECT_NE(R.End, ShardedMonitorIngest::EndState::Error)
      << Ingest.errorText();
  CheckReport Report = M.finalize();
  R.Summary = monitorSummaryJson(Report, M.stats(), Options.Level);
  R.Jsonl = Out.str();
  return R;
}

/// Restores \p S and replays the rest of \p Text with \p Threads; returns
/// the resumed suffix of the JSONL stream plus the final summary.
FuzzRun resumeFuzz(const FuzzSnapshot &S, const std::string &Text,
                   const std::string &Format, const MonitorOptions &Options,
                   unsigned Threads) {
  FuzzRun R;
  std::ostringstream Out;
  JsonLinesSink Sink(Out);
  Monitor M(Options, &Sink);
  std::string MachineState;
  std::string Err;
  EXPECT_TRUE(restoreCheckpoint(S.Blob, M, MachineState, &Err)) << Err;
  ShardedMonitorIngest Ingest(M, Format, Threads);
  ByteReader MR(MachineState);
  EXPECT_TRUE(Ingest.machine().loadState(MR));
  Ingest.primeResume(S.Meta.StreamOffset, S.Meta.LineNo);
  std::string_view Rest = std::string_view(Text).substr(S.Meta.StreamOffset);
  for (size_t Pos = 0; Pos < Rest.size(); Pos += 4096)
    if (!Ingest.feed(Rest.substr(Pos, 4096)))
      break;
  R.End = Ingest.finishStream();
  EXPECT_NE(R.End, ShardedMonitorIngest::EndState::Error)
      << Ingest.errorText();
  CheckReport Report = M.finalize();
  R.Summary = monitorSummaryJson(Report, M.stats(), Options.Level);
  R.Jsonl = Out.str();
  return R;
}

} // namespace

/// Seeded randomized determinism fuzz — the CI scaling matrix's semantic
/// twin: for randomly drawn histories, cadences, and windows, every thread
/// count in {1, 2, 4, 8}, with and without a kill-and-resume in the middle,
/// must produce the byte-identical JSONL violation stream and the
/// byte-identical end-of-run summary.
TEST(ShardedDeterminismFuzz, ByteIdenticalAcrossThreadsAndResume) {
  std::mt19937_64 Rng(0xA5D17u); // fixed seed: failures must reproduce
  const int Cadences[] = {1, 17, 64};
  const int Windows[] = {0, 64};
  for (int Iter = 0; Iter < 4; ++Iter) {
    int Bench = static_cast<int>(Rng() % 4);
    int Seed = static_cast<int>(Rng() % 10000);
    size_t Txns = 400 + static_cast<size_t>(Rng() % 400);
    History H = generated(Bench, Seed, Txns);
    if (Iter % 2 == 1) {
      std::string Err;
      std::optional<History> Injected =
          injectAnomaly(H, static_cast<AnomalyKind>(Rng() % 7),
                        static_cast<uint64_t>(Rng() % 1000), &Err);
      ASSERT_TRUE(Injected) << Err;
      H = std::move(*Injected);
    }
    std::string Text = writeTextHistory(H);

    MonitorOptions Options;
    Options.Level = IsolationLevel::CausalConsistency;
    Options.Check.Threads = 1;
    Options.CheckIntervalTxns =
        static_cast<size_t>(Cadences[Rng() % 3]);
    Options.WindowTxns = static_cast<size_t>(Windows[Rng() % 2]);
    std::string Context = "iter " + std::to_string(Iter) + " cadence " +
                          std::to_string(Options.CheckIntervalTxns) +
                          " window " + std::to_string(Options.WindowTxns);

    std::vector<FuzzSnapshot> Snapshots;
    FuzzRun Reference = runFuzz(Text, "native", Options, 1, &Snapshots);

    // Straight runs: every thread count, byte-for-byte.
    for (unsigned Threads : {2u, 4u, 8u}) {
      FuzzRun Run = runFuzz(Text, "native", Options, Threads);
      EXPECT_EQ(Reference.End, Run.End)
          << Context << " threads " << Threads;
      EXPECT_EQ(Reference.Jsonl, Run.Jsonl)
          << Context << " threads " << Threads;
      EXPECT_EQ(Reference.Summary, Run.Summary)
          << Context << " threads " << Threads;
    }

    // Kill-and-resume at a mid-stream flush: the resumed run's stream is
    // exactly the reference's suffix, and the summary is unchanged.
    if (!Snapshots.empty()) {
      const FuzzSnapshot &S = Snapshots[Snapshots.size() / 2];
      for (unsigned Threads : {1u, 4u, 8u}) {
        FuzzRun Resumed = resumeFuzz(S, Text, "native", Options, Threads);
        EXPECT_EQ(Reference.Jsonl.substr(S.JsonlBytesAtCheckpoint),
                  Resumed.Jsonl)
            << Context << " resume threads " << Threads;
        EXPECT_EQ(Reference.Summary, Resumed.Summary)
            << Context << " resume threads " << Threads;
      }
    }
  }
}

/// abortStream (the SIGINT path) applies everything already fed and leaves
/// the monitor finalizable.
TEST(ShardedIngest, AbortStreamKeepsAppliedPrefix) {
  History H = generated(0, 42, 300);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 8;
  Monitor M(Options);
  ShardedMonitorIngest Ingest(M, "native", 3);
  Ingest.feed(Text);
  Ingest.abortStream();
  EXPECT_TRUE(Ingest.errorText().empty());
  EXPECT_GT(Ingest.committedTxns(), 0u);
  CheckReport Report = M.finalize();
  (void)Report;
  EXPECT_GT(M.stats().IngestedTxns, 0u);
}
