//===- tests/test_hybrid_map.cpp - Hybrid container tests -----------------------===//

#include "support/hybrid_map.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace awdit;

TEST(HybridMap, BasicOperations) {
  HybridMap<uint64_t, int> M;
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.find(1), nullptr);
  M.getOrInsert(1) = 10;
  M.getOrInsert(2) = 20;
  ASSERT_NE(M.find(1), nullptr);
  EXPECT_EQ(*M.find(1), 10);
  EXPECT_EQ(*M.find(2), 20);
  EXPECT_EQ(M.size(), 2u);
  M.getOrInsert(1) = 11; // Overwrite through the same slot.
  EXPECT_EQ(*M.find(1), 11);
  EXPECT_EQ(M.size(), 2u);
  M.clear();
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.find(1), nullptr);
}

TEST(HybridMap, SpillsPastThreshold) {
  HybridMap<uint64_t, uint64_t, /*Threshold=*/8> M;
  for (uint64_t I = 0; I < 100; ++I)
    M.getOrInsert(I) = I * 3;
  EXPECT_EQ(M.size(), 100u);
  for (uint64_t I = 0; I < 100; ++I) {
    ASSERT_NE(M.find(I), nullptr);
    EXPECT_EQ(*M.find(I), I * 3);
  }
  M.clear();
  EXPECT_EQ(M.size(), 0u);
  // Reusable after a spill + clear.
  M.getOrInsert(7) = 7;
  EXPECT_EQ(*M.find(7), 7u);
}

TEST(HybridMap, DifferentialAgainstStdMap) {
  Rng Rand(321);
  HybridMap<uint64_t, uint64_t, 16> M;
  std::map<uint64_t, uint64_t> Ref;
  for (int Op = 0; Op < 3000; ++Op) {
    uint64_t K = Rand.nextBelow(64);
    switch (Rand.nextBelow(3)) {
    case 0: {
      uint64_t V = Rand.next();
      M.getOrInsert(K) = V;
      Ref[K] = V;
      break;
    }
    case 1: {
      uint64_t *Found = M.find(K);
      auto It = Ref.find(K);
      if (It == Ref.end()) {
        EXPECT_EQ(Found, nullptr);
      } else {
        ASSERT_NE(Found, nullptr);
        EXPECT_EQ(*Found, It->second);
      }
      break;
    }
    default:
      if (Rand.nextBool(0.02)) {
        M.clear();
        Ref.clear();
      }
      break;
    }
    EXPECT_EQ(M.size(), Ref.size());
  }
}

TEST(HybridSet, BasicOperations) {
  HybridSet<uint64_t> S;
  EXPECT_FALSE(S.contains(4));
  EXPECT_TRUE(S.insert(4));
  EXPECT_FALSE(S.insert(4));
  EXPECT_TRUE(S.contains(4));
  EXPECT_EQ(S.size(), 1u);
  S.clear();
  EXPECT_FALSE(S.contains(4));
}

TEST(HybridSet, SpillAndIterate) {
  HybridSet<uint64_t, /*Threshold=*/4> S;
  std::set<uint64_t> Ref;
  for (uint64_t I = 0; I < 40; I += 2) {
    S.insert(I);
    Ref.insert(I);
  }
  EXPECT_EQ(S.size(), Ref.size());
  std::set<uint64_t> Seen;
  S.forEach([&](uint64_t K) { Seen.insert(K); });
  EXPECT_EQ(Seen, Ref);
  for (uint64_t I = 0; I < 40; ++I)
    EXPECT_EQ(S.contains(I), Ref.count(I) != 0);
}

TEST(HybridSet, DifferentialAgainstStdSet) {
  Rng Rand(654);
  HybridSet<uint64_t, 12> S;
  std::set<uint64_t> Ref;
  for (int Op = 0; Op < 3000; ++Op) {
    uint64_t K = Rand.nextBelow(48);
    if (Rand.nextBool(0.6)) {
      EXPECT_EQ(S.insert(K), Ref.insert(K).second);
    } else {
      EXPECT_EQ(S.contains(K), Ref.count(K) != 0);
    }
    if (Rand.nextBool(0.01)) {
      S.clear();
      Ref.clear();
    }
    EXPECT_EQ(S.size(), Ref.size());
  }
}
