//===- tests/test_monitor.cpp - Streaming Monitor tests ---------------------===//
//
// The streaming-API battery: checkIsolation() (now a replay-through-Monitor
// wrapper) must stay bit-identical to the raw one-shot engine on generated
// CTwitter/TPC-C/RUBiS histories, clean and anomaly-injected; incremental
// checking must surface violations before finalize and deliver each exactly
// once; windowed mode must keep the live window bounded while still
// catching in-window anomalies; and the streaming text parser must be
// chunking-invariant with line-numbered errors.
//
//===----------------------------------------------------------------------===//

#include "checker/checker.h"
#include "checker/monitor.h"
#include "checker/violation_sink.h"
#include "io/stream_parser.h"
#include "io/text_format.h"
#include "sim/anomaly_injector.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>

using namespace awdit;
using namespace awdit::test;

namespace {

void expectSameReport(const CheckReport &A, const CheckReport &B,
                      const std::string &Context) {
  EXPECT_EQ(A.Consistent, B.Consistent) << Context;
  ASSERT_EQ(A.Violations.size(), B.Violations.size()) << Context;
  for (size_t I = 0; I < A.Violations.size(); ++I) {
    const Violation &X = A.Violations[I], &Y = B.Violations[I];
    EXPECT_EQ(X.Kind, Y.Kind) << Context << " violation " << I;
    EXPECT_EQ(X.T, Y.T) << Context << " violation " << I;
    EXPECT_EQ(X.OpIndex, Y.OpIndex) << Context << " violation " << I;
    EXPECT_EQ(X.Other, Y.Other) << Context << " violation " << I;
    ASSERT_EQ(X.Cycle.size(), Y.Cycle.size()) << Context << " violation "
                                              << I;
    for (size_t E = 0; E < X.Cycle.size(); ++E) {
      EXPECT_EQ(X.Cycle[E].From, Y.Cycle[E].From) << Context;
      EXPECT_EQ(X.Cycle[E].To, Y.Cycle[E].To) << Context;
      EXPECT_EQ(X.Cycle[E].Kind, Y.Cycle[E].Kind) << Context;
    }
  }
  EXPECT_EQ(A.Stats.InferredEdges, B.Stats.InferredEdges) << Context;
  EXPECT_EQ(A.Stats.GraphEdges, B.Stats.GraphEdges) << Context;
  EXPECT_EQ(A.Stats.UsedFastPath, B.Stats.UsedFastPath) << Context;
}

/// The acceptance criterion of the wrapper: both monitor ingestion paths
/// — the bulk-adopt fast path checkIsolation() uses and the incremental
/// operation-by-operation replay() — must reproduce the raw one-shot
/// engine exactly.
void expectWrapperBitIdentical(const History &H, const std::string &Context) {
  for (IsolationLevel Level : AllIsolationLevels) {
    CheckOptions Options;
    Options.Threads = 1; // deterministic sequential reference
    CheckReport OneShot = detail::checkOneShot(H, Level, Options);
    CheckReport Wrapped = checkIsolation(H, Level, Options);
    expectSameReport(OneShot, Wrapped,
                     Context + " (adopt) level " + isolationLevelName(Level));

    MonitorOptions MonitorOpts;
    MonitorOpts.Level = Level;
    MonitorOpts.Check = Options;
    Monitor M(MonitorOpts);
    M.replay(H);
    expectSameReport(OneShot, M.finalize(),
                     Context + " (replay) level " +
                         isolationLevelName(Level));
  }
}

} // namespace

/// Sweep over benchmark x consistency mode x seed on clean generated
/// histories.
class MonitorWrapperClean
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MonitorWrapperClean, BitIdenticalToOneShot) {
  auto [BenchIdx, ModeIdx, Seed] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = static_cast<ConsistencyMode>(ModeIdx);
  P.Sessions = 8;
  P.Txns = 1000;
  P.Seed = static_cast<uint64_t>(Seed * 77 + ModeIdx);
  P.AbortProbability = Seed % 2 == 0 ? 0.05 : 0.0;
  History H = generateHistory(P);
  expectWrapperBitIdentical(H, benchmarkName(P.Bench));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonitorWrapperClean,
    ::testing::Combine(::testing::Range(0, 4),   // benchmarks
                       ::testing::Range(0, 4),   // consistency modes
                       ::testing::Range(1, 3))); // seeds

/// Sweep over injected anomaly kinds: the violating paths, including
/// witness extraction, must also match exactly.
class MonitorWrapperInjected
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MonitorWrapperInjected, BitIdenticalToOneShot) {
  auto [KindIdx, BenchIdx] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 8;
  P.Txns = 600;
  P.Seed = static_cast<uint64_t>(KindIdx * 17 + BenchIdx + 1);
  History Base = generateHistory(P);
  std::string Err;
  std::optional<History> H = injectAnomaly(
      Base, static_cast<AnomalyKind>(KindIdx), P.Seed * 7 + 3, &Err);
  ASSERT_TRUE(H) << Err;
  expectWrapperBitIdentical(
      *H, anomalyKindName(static_cast<AnomalyKind>(KindIdx)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonitorWrapperInjected,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(1, 4)));

/// With incremental checking enabled, an anomalous stream must surface its
/// violation through the sink *before* finalize, exactly once, and the
/// final report must still match the one-shot engine.
TEST(MonitorStreaming, DetectsViolationsBeforeFinalize) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 6;
  P.Txns = 400;
  P.Seed = 11;
  History Base = generateHistory(P);
  std::string Err;
  std::optional<History> H =
      injectAnomaly(Base, AnomalyKind::AbortedRead, 5, &Err);
  ASSERT_TRUE(H) << Err;

  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.CheckIntervalTxns = 32;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  M.replay(*H);
  // The anomaly sits somewhere inside the stream; after ingest (plus one
  // explicit pass for anything after the last interval boundary) it must
  // already have been reported.
  M.check();
  EXPECT_TRUE(M.hadViolation());
  EXPECT_FALSE(Sink.Violations.empty());
  size_t StreamedCount = Sink.Violations.size();

  CheckReport Report = M.finalize();
  EXPECT_FALSE(Report.Consistent);
  // Exactly-once delivery: every streamed read-level violation is part of
  // the canonical report, never re-delivered.
  EXPECT_EQ(M.stats().ReportedViolations, Sink.Violations.size());
  for (size_t I = 0; I < StreamedCount; ++I) {
    const Violation &V = Sink.Violations[I];
    if (!V.Cycle.empty())
      continue;
    bool InReport = false;
    for (const Violation &R : Report.Violations)
      InReport |= R.Kind == V.Kind && R.T == V.T &&
                  R.OpIndex == V.OpIndex && R.Other == V.Other;
    EXPECT_TRUE(InReport) << "streamed violation " << I
                          << " missing from final report";
  }

  CheckOptions Ref;
  Ref.Threads = 1;
  expectSameReport(detail::checkOneShot(*H, Options.Level, Options.Check),
                   Report, "streamed finalize");
}

/// Duplicate sink delivery must not happen across repeated explicit
/// checks: flushing twice with no new input reports nothing new.
TEST(MonitorStreaming, RepeatedChecksReportOnce) {
  GenerateParams P;
  P.Bench = Benchmark::Rubis;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 4;
  P.Txns = 200;
  P.Seed = 23;
  History Base = generateHistory(P);
  std::string Err;
  std::optional<History> H =
      injectAnomaly(Base, AnomalyKind::CausalityCycle, 9, &Err);
  ASSERT_TRUE(H) << Err;

  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  M.replay(*H);
  M.check();
  size_t AfterFirst = Sink.Violations.size();
  EXPECT_GT(AfterFirst, 0u);
  M.check();
  M.check();
  EXPECT_EQ(Sink.Violations.size(), AfterFirst);
}

/// Windowed mode: on a long clean stream the live window stays bounded,
/// transactions are evicted with stats, and no false violation appears.
TEST(MonitorWindowed, BoundedMemoryOnCleanStream) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 8;
  P.Txns = 4000;
  P.Seed = 31;
  History H = generateHistory(P);

  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 100;
  Options.WindowTxns = 400;
  CollectingSink Sink;
  Monitor M(Options, &Sink);

  size_t MaxLive = 0;
  while (M.numSessions() < H.numSessions())
    M.addSession();
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    TxnId Mid = M.beginTxn(T.Session);
    for (const Operation &Op : T.Ops)
      M.append(Mid, Op);
    if (T.Committed)
      M.commit(Mid);
    else
      M.abortTxn(Mid);
    MaxLive = std::max(MaxLive, static_cast<size_t>(M.stats().LiveTxns));
  }
  CheckReport Report = M.finalize();

  EXPECT_TRUE(Report.Consistent);
  EXPECT_TRUE(Sink.Violations.empty());
  const MonitorStats &S = M.stats();
  EXPECT_GT(S.EvictedTxns, 0u);
  EXPECT_GT(S.Compactions, 0u);
  EXPECT_EQ(S.IngestedTxns, H.numTxns());
  // The window can only overshoot by what accumulates between two checking
  // passes (plus open transactions).
  EXPECT_LE(MaxLive,
            Options.WindowTxns + Options.CheckIntervalTxns + 16);
  EXPECT_LE(S.LiveTxns, Options.WindowTxns + Options.CheckIntervalTxns + 16);
}

/// Windowed mode still catches anomalies whose transactions are inside the
/// window, and reports them with stream-stable monitor ids.
TEST(MonitorWindowed, DetectsInWindowAnomalyWithStableIds) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.CheckIntervalTxns = 50;
  Options.WindowTxns = 100;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  SessionId S0 = M.addSession();
  SessionId S1 = M.addSession();

  // A long clean prefix of independent transactions, far larger than the
  // window, so plenty of eviction happens first.
  Value V = 1;
  for (int I = 0; I < 1000; ++I) {
    TxnId T = M.beginTxn(S0);
    M.write(T, /*K=*/static_cast<Key>(I % 7), V);
    M.read(T, static_cast<Key>(I % 7), V);
    ++V;
    M.commit(T);
  }
  ASSERT_GT(M.stats().EvictedTxns, 0u);

  // The anomaly: an aborted transaction whose write is observed by its
  // immediate successor — entirely inside the window.
  TxnId Bad = M.beginTxn(S1);
  M.write(Bad, /*K=*/999, /*V=*/777777);
  M.abortTxn(Bad);
  TxnId Reader = M.beginTxn(S1);
  M.read(Reader, /*K=*/999, /*V=*/777777);
  M.commit(Reader);
  M.check();

  ASSERT_FALSE(Sink.Violations.empty());
  const Violation &V0 = Sink.Violations.front();
  EXPECT_EQ(V0.Kind, ViolationKind::AbortedRead);
  // Monitor ids are stream positions, unaffected by eviction: the two
  // gadget transactions are #1000 and #1001.
  EXPECT_EQ(V0.T, Reader);
  EXPECT_EQ(V0.Other, Bad);
  EXPECT_EQ(Bad, 1000u);
  EXPECT_EQ(Reader, 1001u);

  CheckReport Report = M.finalize();
  EXPECT_FALSE(Report.Consistent);
  EXPECT_TRUE(hasViolation(Report, ViolationKind::AbortedRead));
}

/// The unique-value model invariant is enforced at ingestion time.
TEST(MonitorIngestion, DuplicateWriteIsRejected) {
  Monitor M;
  SessionId S = M.addSession();
  TxnId T1 = M.beginTxn(S);
  EXPECT_TRUE(M.write(T1, 1, 10));
  M.commit(T1);
  TxnId T2 = M.beginTxn(S);
  EXPECT_FALSE(M.write(T2, 1, 10));
  EXPECT_NE(M.errorText().find("duplicate write"), std::string::npos);
}

/// Reads that arrive before their writer (in stream order) resolve
/// retroactively; the wrapper equality above covers this wholesale, this
/// is the minimal explicit case.
TEST(MonitorIngestion, RetroactiveWrResolution) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.CheckIntervalTxns = 1; // check after every commit
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  SessionId S0 = M.addSession();
  SessionId S1 = M.addSession();

  TxnId Reader = M.beginTxn(S0);
  M.read(Reader, /*K=*/5, /*V=*/50);
  M.commit(Reader); // writer not seen yet: parked, not thin-air
  EXPECT_EQ(M.stats().UnresolvedReads, 1u);

  TxnId Writer = M.beginTxn(S1);
  M.write(Writer, /*K=*/5, /*V=*/50);
  M.commit(Writer);
  EXPECT_EQ(M.stats().UnresolvedReads, 0u);

  CheckReport Report = M.finalize();
  EXPECT_TRUE(Report.Consistent) << "retro-resolved read is not thin-air";
  EXPECT_TRUE(Sink.Violations.empty());
}

/// Still-open transactions at finalize are treated as never-committed.
TEST(MonitorIngestion, OpenTxnAtFinalizeIsAborted) {
  Monitor M;
  SessionId S = M.addSession();
  TxnId Open = M.beginTxn(S);
  M.write(Open, 1, 10);
  TxnId Reader = M.beginTxn(S);
  M.read(Reader, 1, 10);
  M.commit(Reader);
  CheckReport Report = M.finalize();
  EXPECT_FALSE(Report.Consistent);
  EXPECT_TRUE(hasViolation(Report, ViolationKind::AbortedRead));
}

/// The streaming parser must be invariant to chunk boundaries and agree
/// with the one-shot parser end to end.
TEST(StreamingParser, ChunkingInvariant) {
  GenerateParams P;
  P.Bench = Benchmark::Tpcc;
  P.Sessions = 4;
  P.Txns = 150;
  P.Seed = 3;
  History H = generateHistory(P);
  std::string Text = writeTextHistory(H);

  for (size_t Chunk : {size_t(1), size_t(7), size_t(4096)}) {
    MonitorOptions Options;
    Options.Level = IsolationLevel::CausalConsistency;
    Monitor M(Options);
    StreamingTextParser Parser(M);
    std::string Err;
    for (size_t Pos = 0; Pos < Text.size(); Pos += Chunk)
      ASSERT_TRUE(Parser.feed(
          std::string_view(Text).substr(Pos, Chunk), &Err))
          << Err;
    ASSERT_TRUE(Parser.finish(&Err)) << Err;
    CheckReport Streamed = M.finalize();

    CheckOptions Ref;
    Ref.Threads = 1;
    expectSameReport(
        detail::checkOneShot(H, IsolationLevel::CausalConsistency, Ref),
        Streamed, "chunk size " + std::to_string(Chunk));
  }
}

/// Streaming parser errors carry the offending line number — including the
/// duplicate-write model invariant the monitor detects during ingestion.
TEST(StreamingParser, ErrorsCarryLineNumbers) {
  {
    Monitor M;
    StreamingTextParser Parser(M);
    std::string Err;
    EXPECT_FALSE(Parser.feed("b 0\nw 1 10\nxyz\n", &Err));
    EXPECT_NE(Err.find("line 3"), std::string::npos) << Err;
  }
  {
    Monitor M;
    StreamingTextParser Parser(M);
    std::string Err;
    EXPECT_FALSE(
        Parser.feed("b 0\nw 1 10\nc\nb 1\nw 1 10\n", &Err));
    EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
    EXPECT_NE(Err.find("duplicate write"), std::string::npos) << Err;
  }
}
