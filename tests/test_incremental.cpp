//===- tests/test_incremental.cpp - Incremental engine equivalence ----------===//
//
// The acceptance battery of the incremental delta-driven saturation engine:
// the Monitor driven at any flush cadence must produce reports bit-identical
// to the replay engine (the batch checkRc/checkRa/checkCc checkers) on clean
// and anomaly-injected generated histories; windowed mode must stay bounded
// and false-positive-free across cadence/window sweeps; the age-based
// eviction and force-abort policies must unpin hung sessions; and the
// streaming plume/dbcop parsers must be chunking-invariant.
//
//===----------------------------------------------------------------------===//

#include "checker/check_cc.h"
#include "checker/check_ra.h"
#include "checker/check_ra_single_session.h"
#include "checker/check_rc.h"
#include "checker/checker.h"
#include "checker/monitor.h"
#include "checker/violation_sink.h"
#include "io/dbcop_format.h"
#include "io/plume_format.h"
#include "io/stream_parser.h"
#include "sim/anomaly_injector.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <tuple>

using namespace awdit;
using namespace awdit::test;

namespace {

void expectSameReport(const CheckReport &A, const CheckReport &B,
                      const std::string &Context) {
  EXPECT_EQ(A.Consistent, B.Consistent) << Context;
  ASSERT_EQ(A.Violations.size(), B.Violations.size()) << Context;
  for (size_t I = 0; I < A.Violations.size(); ++I) {
    const Violation &X = A.Violations[I], &Y = B.Violations[I];
    EXPECT_EQ(X.Kind, Y.Kind) << Context << " violation " << I;
    EXPECT_EQ(X.T, Y.T) << Context << " violation " << I;
    EXPECT_EQ(X.OpIndex, Y.OpIndex) << Context << " violation " << I;
    EXPECT_EQ(X.Other, Y.Other) << Context << " violation " << I;
    ASSERT_EQ(X.Cycle.size(), Y.Cycle.size())
        << Context << " violation " << I;
    for (size_t E = 0; E < X.Cycle.size(); ++E) {
      EXPECT_EQ(X.Cycle[E].From, Y.Cycle[E].From) << Context;
      EXPECT_EQ(X.Cycle[E].To, Y.Cycle[E].To) << Context;
      EXPECT_EQ(X.Cycle[E].Kind, Y.Cycle[E].Kind) << Context;
    }
  }
  EXPECT_EQ(A.Stats.InferredEdges, B.Stats.InferredEdges) << Context;
  EXPECT_EQ(A.Stats.GraphEdges, B.Stats.GraphEdges) << Context;
  EXPECT_EQ(A.Stats.UsedFastPath, B.Stats.UsedFastPath) << Context;
}

/// The replay engine: the historical batch checkers, called directly. This
/// is the reference the incremental engine must reproduce bit-identically.
CheckReport replayReference(const History &H, IsolationLevel Level) {
  CheckReport Report;
  SaturationStats Sat;
  switch (Level) {
  case IsolationLevel::ReadCommitted:
    Report.Consistent = checkRc(H, Report.Violations, 16, &Sat);
    break;
  case IsolationLevel::ReadAtomic:
    Report.Consistent = checkRa(H, Report.Violations, 16, &Sat);
    break;
  case IsolationLevel::CausalConsistency:
    Report.Consistent = checkCc(H, Report.Violations, 16, &Sat);
    break;
  }
  Report.Stats.InferredEdges = Sat.InferredEdges;
  Report.Stats.GraphEdges = Sat.GraphEdges;
  return Report;
}

/// Drives a Monitor over \p H at flush cadence \p Interval and requires the
/// finalize report to match both the replay engine and the one-shot facade
/// exactly, at every isolation level.
void expectIncrementalMatchesReplay(const History &H, size_t Interval,
                                    const std::string &Context) {
  for (IsolationLevel Level : AllIsolationLevels) {
    if (Level == IsolationLevel::ReadAtomic && isSingleSession(H))
      continue; // the facade takes the Theorem 1.6 fast path there
    CheckReport Replay = replayReference(H, Level);

    CheckOptions Options;
    Options.Threads = 1;
    CheckReport OneShot = detail::checkOneShot(H, Level, Options);
    expectSameReport(Replay, OneShot,
                     Context + " one-shot level " + isolationLevelName(Level));

    MonitorOptions MonitorOpts;
    MonitorOpts.Level = Level;
    MonitorOpts.Check = Options;
    MonitorOpts.CheckIntervalTxns = Interval;
    Monitor M(MonitorOpts);
    M.replay(H);
    expectSameReport(Replay, M.finalize(),
                     Context + " interval " + std::to_string(Interval) +
                         " level " + isolationLevelName(Level));
  }
}

} // namespace

/// Clean generated histories: benchmark x consistency mode x cadence.
class IncrementalEquivalenceClean
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IncrementalEquivalenceClean, MatchesReplayEngine) {
  auto [BenchIdx, ModeIdx, Interval] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = static_cast<ConsistencyMode>(ModeIdx);
  P.Sessions = 6;
  P.Txns = 500;
  P.Seed = static_cast<uint64_t>(BenchIdx * 31 + ModeIdx * 7 + Interval);
  P.AbortProbability = ModeIdx % 2 == 0 ? 0.05 : 0.0;
  History H = generateHistory(P);
  expectIncrementalMatchesReplay(H, static_cast<size_t>(Interval),
                                 benchmarkName(P.Bench));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalEquivalenceClean,
    ::testing::Combine(::testing::Range(0, 4),          // benchmarks
                       ::testing::Range(0, 4),          // consistency modes
                       ::testing::Values(1, 17, 128))); // flush cadence

/// Anomaly-injected histories: every injected kind, tight and loose
/// cadences — the violating paths, including incremental cycle detection
/// and witness extraction at finalize, must match the replay engine too.
class IncrementalEquivalenceInjected
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IncrementalEquivalenceInjected, MatchesReplayEngine) {
  auto [KindIdx, Interval] = GetParam();
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 6;
  P.Txns = 400;
  P.Seed = static_cast<uint64_t>(KindIdx * 13 + Interval + 2);
  History Base = generateHistory(P);
  std::string Err;
  std::optional<History> H = injectAnomaly(
      Base, static_cast<AnomalyKind>(KindIdx), P.Seed * 5 + 1, &Err);
  ASSERT_TRUE(H) << Err;
  expectIncrementalMatchesReplay(
      *H, static_cast<size_t>(Interval),
      anomalyKindName(static_cast<AnomalyKind>(KindIdx)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalEquivalenceInjected,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(1, 64)));

/// The adopt fast path feeds the engine its first delta at the first
/// explicit check; the finalize report must still be canonical.
TEST(IncrementalEngine, AdoptThenCheckStaysBitIdentical) {
  GenerateParams P;
  P.Bench = Benchmark::Rubis;
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 6;
  P.Txns = 400;
  P.Seed = 5;
  History H = generateHistory(P);
  for (IsolationLevel Level : AllIsolationLevels) {
    CheckOptions Options;
    Options.Threads = 1;
    MonitorOptions MonitorOpts;
    MonitorOpts.Level = Level;
    MonitorOpts.Check = Options;
    Monitor M(MonitorOpts);
    M.adopt(H);
    EXPECT_TRUE(M.check());
    expectSameReport(detail::checkOneShot(H, Level, Options), M.finalize(),
                     std::string("adopt+check level ") +
                         isolationLevelName(Level));
  }
}

/// Retroactive wr resolution with per-commit cadence: a read that precedes
/// its writer in stream order exercises the dirty re-propagation of the
/// happens-before rows and the replacement of per-reader inferences.
TEST(IncrementalEngine, RetroactiveResolutionPropagatesCc) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 1;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  SessionId S0 = M.addSession();
  SessionId S1 = M.addSession();
  SessionId S2 = M.addSession();

  // s0 reads (5, 50) before anyone wrote it.
  TxnId Reader = M.beginTxn(S0);
  M.read(Reader, 5, 50);
  M.commit(Reader);
  // A chain of commits after it in other sessions.
  TxnId Mid = M.beginTxn(S1);
  M.write(Mid, 6, 60);
  M.commit(Mid);
  TxnId Tail = M.beginTxn(S0);
  M.read(Tail, 6, 60);
  M.commit(Tail);
  // The missing writer arrives late, in a third session.
  TxnId Writer = M.beginTxn(S2);
  M.write(Writer, 5, 50);
  M.commit(Writer);

  CheckReport Report = M.finalize();
  EXPECT_TRUE(Report.Consistent) << "retro-resolved stream is clean";
  EXPECT_TRUE(Sink.Violations.empty());
}

/// Windowed sweeps: cadence x window size on a long clean causal stream.
/// The window must stay bounded, evictions must happen, and no false
/// violation may appear — the engine's compaction keeps every persisted
/// fact consistent with the rebased window.
class IncrementalWindowedClean
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IncrementalWindowedClean, BoundedAndFalsePositiveFree) {
  auto [Interval, Window] = GetParam();
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 8;
  P.Txns = 3000;
  P.Seed = static_cast<uint64_t>(Interval + Window);
  History H = generateHistory(P);

  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = static_cast<size_t>(Interval);
  Options.WindowTxns = static_cast<size_t>(Window);
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  size_t MaxLive = 0;
  while (M.numSessions() < H.numSessions())
    M.addSession();
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    TxnId Mid = M.beginTxn(T.Session);
    for (const Operation &Op : T.Ops)
      M.append(Mid, Op);
    if (T.Committed)
      M.commit(Mid);
    else
      M.abortTxn(Mid);
    MaxLive = std::max(MaxLive, static_cast<size_t>(M.stats().LiveTxns));
  }
  CheckReport Report = M.finalize();

  EXPECT_TRUE(Report.Consistent);
  EXPECT_TRUE(Sink.Violations.empty());
  const MonitorStats &S = M.stats();
  EXPECT_GT(S.EvictedTxns, 0u);
  EXPECT_LE(MaxLive, static_cast<size_t>(Window + Interval) + 16);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalWindowedClean,
                         ::testing::Combine(::testing::Values(32, 128),
                                            ::testing::Values(200, 800)));

/// Windowed mode still catches an in-window anomaly after heavy eviction,
/// at every cadence.
class IncrementalWindowedInjected : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalWindowedInjected, DetectsInWindowAnomaly) {
  int Interval = GetParam();
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = static_cast<size_t>(Interval);
  Options.WindowTxns = 120;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  SessionId S0 = M.addSession();
  SessionId S1 = M.addSession();

  Value V = 1;
  for (int I = 0; I < 1200; ++I) {
    TxnId T = M.beginTxn(S0);
    M.write(T, static_cast<Key>(I % 5), V);
    M.read(T, static_cast<Key>(I % 5), V);
    ++V;
    M.commit(T);
  }
  ASSERT_GT(M.stats().EvictedTxns, 0u);

  // A causal violation gadget entirely inside the window: t_a writes two
  // keys; t_b reads one and writes a third; t_c reads the third but an
  // older value of the first — inferring a cycle under CC.
  TxnId A = M.beginTxn(S1);
  M.write(A, 900, 9001);
  M.write(A, 901, 9011);
  M.commit(A);
  TxnId B = M.beginTxn(S1);
  M.read(B, 900, 9001);
  M.write(B, 900, 9002);
  M.commit(B);
  TxnId C = M.beginTxn(S0);
  M.read(C, 900, 9002);
  M.commit(C);
  TxnId D = M.beginTxn(S0);
  M.read(D, 900, 9001); // stale: B's overwrite happens-before D
  M.commit(D);
  M.check();

  EXPECT_TRUE(M.hadViolation());
  EXPECT_FALSE(Sink.Violations.empty());
  CheckReport Report = M.finalize();
  EXPECT_FALSE(Report.Consistent);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalWindowedInjected,
                         ::testing::Values(1, 25, 100));

/// A hung session pins the evictable prefix; ForceAbortOpenTicks unpins it
/// and reports the forced abort, and reads of the force-aborted write are
/// reported as aborted reads.
TEST(IncrementalEviction, ForceAbortUnpinsHungSession) {
  auto Drive = [](uint64_t ForceTicks, MonitorStats &StatsOut,
                  std::vector<Violation> &SinkOut) {
    MonitorOptions Options;
    Options.Level = IsolationLevel::ReadCommitted;
    Options.CheckIntervalTxns = 20;
    Options.WindowTxns = 50;
    Options.ForceAbortOpenTicks = ForceTicks;
    CollectingSink Sink;
    Monitor M(Options, &Sink);
    SessionId Hung = M.addSession();
    SessionId Busy = M.addSession();

    M.advanceTime(0);
    TxnId Stuck = M.beginTxn(Hung);
    M.write(Stuck, 7777, 1);
    // The stream keeps flowing; one transaction observes the hung write.
    TxnId Observer = M.beginTxn(Busy);
    M.read(Observer, 7777, 1);
    M.commit(Observer);
    for (int I = 0; I < 500; ++I) {
      M.advanceTime(static_cast<uint64_t>(I));
      TxnId T = M.beginTxn(Busy);
      M.write(T, static_cast<Key>(I), static_cast<Value>(I) + 10);
      M.commit(T);
    }
    M.check();
    StatsOut = M.stats();
    M.finalize();
    SinkOut = Sink.Violations;
  };

  MonitorStats Pinned;
  std::vector<Violation> PinnedSink;
  Drive(/*ForceTicks=*/0, Pinned, PinnedSink);
  // Without the policy the open transaction pins everything behind it.
  EXPECT_EQ(Pinned.EvictedTxns, 0u);
  EXPECT_GT(Pinned.LiveTxns, 400u);
  EXPECT_EQ(Pinned.ForcedAborts, 0u);

  MonitorStats Unpinned;
  std::vector<Violation> UnpinnedSink;
  Drive(/*ForceTicks=*/100, Unpinned, UnpinnedSink);
  EXPECT_EQ(Unpinned.ForcedAborts, 1u);
  EXPECT_GT(Unpinned.EvictedTxns, 0u);
  EXPECT_LT(Unpinned.LiveTxns, 200u);
  // The observer of the force-aborted write is reported.
  bool SawAbortedRead = false;
  for (const Violation &V : UnpinnedSink)
    SawAbortedRead |= V.Kind == ViolationKind::AbortedRead;
  EXPECT_TRUE(SawAbortedRead);
}

/// A force-aborted transaction's handle stays safe: late operations and
/// the eventual commit/abort on it are dropped, even after the window
/// evicted the transaction itself (regression: this used to walk off the
/// evicted prefix).
TEST(IncrementalEviction, ForceAbortedHandleStaysSafe) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.CheckIntervalTxns = 10;
  Options.WindowTxns = 4;
  Options.ForceAbortOpenTicks = 10;
  Monitor M(Options);
  SessionId Hung = M.addSession();
  SessionId Busy = M.addSession();
  M.advanceTime(0);
  TxnId Stuck = M.beginTxn(Hung);
  EXPECT_TRUE(M.write(Stuck, 7777, 1));
  for (int I = 0; I < 200; ++I) {
    M.advanceTime(static_cast<uint64_t>(I));
    TxnId T = M.beginTxn(Busy);
    M.write(T, static_cast<Key>(I), static_cast<Value>(I) + 10);
    M.commit(T);
  }
  ASSERT_EQ(M.stats().ForcedAborts, 1u);
  ASSERT_GT(M.stats().EvictedTxns, 0u);
  // The hung session resumes and keeps using the dead handle.
  EXPECT_TRUE(M.write(Stuck, 8888, 2));
  M.read(Stuck, 8888, 2);
  M.commit(Stuck);   // dropped: already aborted by policy
  M.abortTxn(Stuck); // dropped too
  M.finalize();
  EXPECT_EQ(M.stats().ForcedAborts, 1u);
}

/// Transactions ingested before the first timestamp are anchored at it:
/// a stream whose clock starts at a large absolute value (epoch millis)
/// must not instantly force-abort or age-evict them (regression).
TEST(IncrementalEviction, FirstTimestampAnchorsExistingTxns) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.CheckIntervalTxns = 1;
  Options.ForceAbortOpenTicks = 60000;
  Options.WindowAgeTicks = 60000;
  Monitor M(Options);
  SessionId A = M.addSession();
  SessionId B = M.addSession();
  TxnId Open = M.beginTxn(A);
  M.write(Open, 1, 10);
  TxnId Closed = M.beginTxn(B);
  M.write(Closed, 2, 20);
  M.commit(Closed);
  M.advanceTime(1753660000000ull); // first timestamp: epoch milliseconds
  TxnId T = M.beginTxn(B);
  M.write(T, 3, 30);
  M.commit(T); // triggers a flush under the new clock
  EXPECT_EQ(M.stats().ForcedAborts, 0u);
  EXPECT_EQ(M.stats().EvictedTxns, 0u);
  M.commit(Open);
  EXPECT_TRUE(M.finalize().Consistent);
}

/// Age-based eviction: closed transactions older than WindowAgeTicks leave
/// the window even without a count horizon.
TEST(IncrementalEviction, AgeHorizonEvicts) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 10;
  Options.WindowAgeTicks = 100;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  SessionId S = M.addSession();
  for (int I = 0; I < 400; ++I) {
    M.advanceTime(static_cast<uint64_t>(I * 5));
    TxnId T = M.beginTxn(S);
    M.write(T, static_cast<Key>(I), static_cast<Value>(I) + 1);
    M.commit(T);
  }
  const MonitorStats &S1 = M.stats();
  EXPECT_GT(S1.AgeEvictedTxns, 0u);
  EXPECT_GT(S1.EvictedTxns, 0u);
  // Roughly WindowAgeTicks / 5 ticks-per-txn transactions stay live
  // (modulo the flush cadence and the horizon boundary).
  EXPECT_LE(S1.LiveTxns, 100u / 5 + 10 + 5);
  CheckReport Report = M.finalize();
  EXPECT_TRUE(Report.Consistent);
  EXPECT_TRUE(Sink.Violations.empty());
}

/// Streaming foreign-format parsers: chunking-invariant and equal to the
/// batch parser + one-shot checker end to end.
class StreamingForeignFormats : public ::testing::TestWithParam<int> {};

TEST_P(StreamingForeignFormats, ChunkingInvariantAndBatchEquivalent) {
  bool Plume = GetParam() == 0;
  GenerateParams P;
  P.Bench = Benchmark::Tpcc;
  P.Sessions = 4;
  P.Txns = 150;
  P.Seed = 9;
  P.AbortProbability = 0.1;
  History H = generateHistory(P);
  std::string Text = Plume ? writePlumeHistory(H) : writeDbcopHistory(H);

  std::string Err;
  std::optional<History> Batch = Plume ? parsePlumeHistory(Text, &Err)
                                       : parseDbcopHistory(Text, &Err);
  ASSERT_TRUE(Batch) << Err;
  CheckOptions Ref;
  Ref.Threads = 1;
  CheckReport Expected =
      detail::checkOneShot(*Batch, IsolationLevel::CausalConsistency, Ref);

  for (size_t Chunk : {size_t(1), size_t(7), size_t(4096)}) {
    MonitorOptions Options;
    Options.Level = IsolationLevel::CausalConsistency;
    Options.Check = Ref;
    Monitor M(Options);
    std::unique_ptr<StreamParser> Parser =
        makeStreamParser(Plume ? "plume" : "dbcop", M);
    ASSERT_TRUE(Parser);
    for (size_t Pos = 0; Pos < Text.size(); Pos += Chunk)
      ASSERT_TRUE(Parser->feed(
          std::string_view(Text).substr(Pos, Chunk), &Err))
          << Err;
    ASSERT_TRUE(Parser->finish(&Err)) << Err;
    EXPECT_EQ(Parser->committedTxns(),
              static_cast<uint64_t>(Batch->numCommitted()));
    expectSameReport(Expected, M.finalize(),
                     std::string(Plume ? "plume" : "dbcop") + " chunk " +
                         std::to_string(Chunk));
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, StreamingForeignFormats,
                         ::testing::Values(0, 1));

/// Foreign-format streaming errors carry line numbers, including the
/// duplicate-write model invariant.
TEST(StreamingForeignFormats, ErrorsCarryLineNumbers) {
  {
    Monitor M;
    StreamingPlumeParser Parser(M);
    std::string Err;
    EXPECT_FALSE(Parser.feed("0,0,w,1,10\n0,0,r\n", &Err));
    EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  }
  {
    Monitor M;
    StreamingPlumeParser Parser(M);
    std::string Err;
    EXPECT_FALSE(Parser.feed("0,0,w,1,10\n1,1,w,1,10\n", &Err));
    EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
    EXPECT_NE(Err.find("duplicate write"), std::string::npos) << Err;
  }
  {
    Monitor M;
    StreamingDbcopParser Parser(M);
    std::string Err;
    EXPECT_FALSE(Parser.feed("sessions 1\ntxn 0 1 2\nW 1 10\nW 1 10\n",
                             &Err));
    EXPECT_NE(Err.find("line 4"), std::string::npos) << Err;
    EXPECT_NE(Err.find("duplicate write"), std::string::npos) << Err;
  }
  {
    Monitor M;
    StreamingDbcopParser Parser(M);
    std::string Err;
    EXPECT_FALSE(Parser.feed("txn 0 1 1\n", &Err));
    EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
    EXPECT_NE(Err.find("header"), std::string::npos) << Err;
  }
}

/// The native streaming clock directive drives the monitor clock.
TEST(StreamingForeignFormats, NativeClockDirective) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.CheckIntervalTxns = 1;
  Options.WindowAgeTicks = 10;
  Monitor M(Options);
  StreamingTextParser Parser(M);
  std::string Err;
  std::string Stream;
  for (int I = 0; I < 50; ++I) {
    Stream += "t " + std::to_string(I * 5) + "\n";
    Stream += "b 0\nw " + std::to_string(I) + " " + std::to_string(I + 1) +
              "\nc\n";
  }
  ASSERT_TRUE(Parser.feed(Stream, &Err)) << Err;
  ASSERT_TRUE(Parser.finish(&Err)) << Err;
  EXPECT_GT(M.stats().AgeEvictedTxns, 0u);
}
