//===- tests/test_checkpoint.cpp - Persistent checkpoint round-trips --------===//
//
// The acceptance battery of persistent monitor checkpoints
// (checker/checkpoint.h): serialize -> restore -> continue must be
// bit-identical to an uninterrupted run — the resumed monitor emits exactly
// the violations the uninterrupted run emitted after the checkpoint, and
// its finalize report and cumulative statistics equal the uninterrupted
// run's — across flush cadences, window sizes, isolation levels, clean and
// anomaly-injected histories, and all three stream formats. Corrupted or
// truncated checkpoints must fail with a clear diagnostic, never UB.
//
//===----------------------------------------------------------------------===//

#include "checker/checkpoint.h"
#include "checker/monitor.h"
#include "checker/violation_sink.h"
#include "io/dbcop_format.h"
#include "io/plume_format.h"
#include "io/sharded_ingest.h"
#include "io/text_format.h"
#include "sim/anomaly_injector.h"
#include "support/serialize.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

using namespace awdit;
using namespace awdit::test;

namespace {

/// One captured snapshot: the encoded blob plus how many violations had
/// been reported when it was taken (the expected re-emission cut).
struct Snapshot {
  std::string Blob;
  CheckpointMeta Meta;
  uint64_t ViolationsAtCheckpoint = 0;
};

struct ReferenceRun {
  CheckReport Report;
  std::vector<std::string> Descriptions;
  MonitorStats Stats;
  std::vector<Snapshot> Snapshots; // one per flush
};

/// Runs the stream uninterrupted, capturing a checkpoint at every flush
/// boundary — every possible crash point.
ReferenceRun runWithSnapshots(const std::string &Text,
                              const std::string &Format,
                              const MonitorOptions &Options) {
  ReferenceRun Run;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  ShardedMonitorIngest Ingest(
      M, Format, /*Threads=*/1, [&](const IngestFlushPoint &P) {
        Snapshot S;
        S.Meta.Format = Format;
        S.Meta.Options = Options;
        S.Meta.StreamOffset = P.StreamOffset;
        S.Meta.LineNo = P.LineNo;
        S.Meta.CommittedTxns = P.CommittedTxns;
        S.Meta.Flushes = P.Flushes;
        std::string MachineBlob;
        ByteWriter W(MachineBlob);
        P.Machine.saveState(W);
        S.Blob = encodeCheckpoint(P.M, MachineBlob, S.Meta);
        S.ViolationsAtCheckpoint = P.M.stats().ReportedViolations;
        Run.Snapshots.push_back(std::move(S));
      });
  EXPECT_TRUE(Ingest.valid());
  for (size_t Pos = 0; Pos < Text.size(); Pos += 5000)
    if (!Ingest.feed(std::string_view(Text).substr(Pos, 5000)))
      break;
  EXPECT_NE(Ingest.finishStream(), ShardedMonitorIngest::EndState::Error)
      << Ingest.errorText();
  Run.Report = M.finalize();
  Run.Stats = M.stats();
  Run.Descriptions = std::move(Sink.Descriptions);
  return Run;
}

void expectSameViolation(const Violation &X, const Violation &Y,
                         const std::string &Context) {
  EXPECT_EQ(X.Kind, Y.Kind) << Context;
  EXPECT_EQ(X.T, Y.T) << Context;
  EXPECT_EQ(X.OpIndex, Y.OpIndex) << Context;
  EXPECT_EQ(X.Other, Y.Other) << Context;
  ASSERT_EQ(X.Cycle.size(), Y.Cycle.size()) << Context;
  for (size_t E = 0; E < X.Cycle.size(); ++E) {
    EXPECT_EQ(X.Cycle[E].From, Y.Cycle[E].From) << Context;
    EXPECT_EQ(X.Cycle[E].To, Y.Cycle[E].To) << Context;
    EXPECT_EQ(X.Cycle[E].Kind, Y.Cycle[E].Kind) << Context;
  }
}

/// Restores \p S, replays the rest of \p Text, and checks every
/// observable against the uninterrupted reference.
void resumeAndCompare(const ReferenceRun &Ref, const Snapshot &S,
                      const std::string &Text, const std::string &Format,
                      const MonitorOptions &Options, unsigned Threads,
                      const std::string &Context) {
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  std::string MachineState;
  std::string Err;
  ASSERT_TRUE(restoreCheckpoint(S.Blob, M, MachineState, &Err))
      << Context << ": " << Err;

  ShardedMonitorIngest Ingest(M, Format, Threads);
  ByteReader MR(MachineState);
  ASSERT_TRUE(Ingest.machine().loadState(MR)) << Context;
  Ingest.primeResume(S.Meta.StreamOffset, S.Meta.LineNo);

  std::string_view Rest =
      std::string_view(Text).substr(S.Meta.StreamOffset);
  for (size_t Pos = 0; Pos < Rest.size(); Pos += 4096)
    if (!Ingest.feed(Rest.substr(Pos, 4096)))
      break;
  EXPECT_NE(Ingest.finishStream(), ShardedMonitorIngest::EndState::Error)
      << Context << ": " << Ingest.errorText();

  CheckReport Report = M.finalize();
  const MonitorStats &Stats = M.stats();

  // The resumed violation stream is exactly the uninterrupted run's
  // suffix from the checkpoint onward.
  ASSERT_LE(S.ViolationsAtCheckpoint, Ref.Descriptions.size()) << Context;
  std::vector<std::string> ExpectedSuffix(
      Ref.Descriptions.begin() +
          static_cast<ptrdiff_t>(S.ViolationsAtCheckpoint),
      Ref.Descriptions.end());
  EXPECT_EQ(ExpectedSuffix, Sink.Descriptions) << Context;

  // The finalize report and cumulative stats equal the uninterrupted
  // run's — the restart is invisible.
  EXPECT_EQ(Ref.Report.Consistent, Report.Consistent) << Context;
  ASSERT_EQ(Ref.Report.Violations.size(), Report.Violations.size())
      << Context;
  for (size_t I = 0; I < Report.Violations.size(); ++I)
    expectSameViolation(Ref.Report.Violations[I], Report.Violations[I],
                        Context + " violation " + std::to_string(I));
  EXPECT_EQ(Ref.Report.Stats.InferredEdges, Report.Stats.InferredEdges)
      << Context;
  EXPECT_EQ(Ref.Report.Stats.GraphEdges, Report.Stats.GraphEdges) << Context;
  EXPECT_EQ(Ref.Stats.IngestedTxns, Stats.IngestedTxns) << Context;
  EXPECT_EQ(Ref.Stats.IngestedOps, Stats.IngestedOps) << Context;
  EXPECT_EQ(Ref.Stats.CommittedTxns, Stats.CommittedTxns) << Context;
  EXPECT_EQ(Ref.Stats.Flushes, Stats.Flushes) << Context;
  EXPECT_EQ(Ref.Stats.ReportedViolations, Stats.ReportedViolations)
      << Context;
  EXPECT_EQ(Ref.Stats.EvictedTxns, Stats.EvictedTxns) << Context;
  EXPECT_EQ(Ref.Stats.UnresolvedReads, Stats.UnresolvedReads) << Context;
}

History generated(int Seed, size_t Txns, bool Inject) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 6;
  P.Txns = Txns;
  P.Seed = static_cast<uint64_t>(Seed);
  P.AbortProbability = 0.05;
  History H = generateHistory(P);
  if (!Inject)
    return H;
  std::string Err;
  std::optional<History> Mutated =
      injectAnomaly(H, AnomalyKind::CausalViolation,
                    static_cast<uint64_t>(Seed * 3 + 1), &Err);
  EXPECT_TRUE(Mutated) << Err;
  return Mutated ? std::move(*Mutated) : std::move(H);
}

} // namespace

/// The headline sweep: restore at an early, middle, and late flush and
/// continue — level x cadence x window x clean/injected.
class CheckpointRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(CheckpointRoundTrip, ResumeIsBitIdentical) {
  auto [LevelIdx, Interval, Window, Inject] = GetParam();
  History H = generated(LevelIdx * 13 + Interval + Window, 600, Inject);
  std::string Text = writeTextHistory(H);

  MonitorOptions Options;
  Options.Level = static_cast<IsolationLevel>(LevelIdx);
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = static_cast<size_t>(Interval);
  Options.WindowTxns = static_cast<size_t>(Window);

  ReferenceRun Ref = runWithSnapshots(Text, "native", Options);
  ASSERT_FALSE(Ref.Snapshots.empty());
  // Early, middle, and late crash points; resumed single- and
  // multi-threaded.
  size_t Last = Ref.Snapshots.size() - 1;
  for (size_t Idx : {size_t(0), Last / 2, Last}) {
    std::string Context = "level " + std::to_string(LevelIdx) +
                          " interval " + std::to_string(Interval) +
                          " window " + std::to_string(Window) +
                          (Inject ? " injected" : " clean") + " snapshot " +
                          std::to_string(Idx);
    resumeAndCompare(Ref, Ref.Snapshots[Idx], Text, "native", Options,
                     /*Threads=*/1, Context + " threads 1");
    resumeAndCompare(Ref, Ref.Snapshots[Idx], Text, "native", Options,
                     /*Threads=*/3, Context + " threads 3");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CheckpointRoundTrip,
    ::testing::Combine(::testing::Range(0, 3),        // isolation level
                       ::testing::Values(1, 33),      // flush cadence
                       ::testing::Values(0, 96),      // window size
                       ::testing::Bool()));           // inject an anomaly

/// Foreign formats checkpoint their parser-machine state too: a plume
/// snapshot can land mid-pair, a dbcop snapshot mid-block.
TEST(Checkpoint, ForeignFormatMachineStateRoundTrips) {
  History H = generated(7, 500, /*Inject=*/true);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 16;

  for (auto [Format, Text] :
       {std::pair<std::string, std::string>{"plume", writePlumeHistory(H)},
        std::pair<std::string, std::string>{"dbcop",
                                            writeDbcopHistory(H)}}) {
    ReferenceRun Ref = runWithSnapshots(Text, Format, Options);
    ASSERT_FALSE(Ref.Snapshots.empty()) << Format;
    size_t Last = Ref.Snapshots.size() - 1;
    for (size_t Idx : {Last / 3, Last / 2, Last})
      resumeAndCompare(Ref, Ref.Snapshots[Idx], Text, Format, Options,
                       /*Threads=*/2,
                       Format + " snapshot " + std::to_string(Idx));
  }
}

/// Streams with clock directives: stream time and per-transaction
/// timestamps must survive the round trip so the age horizon keeps
/// evicting exactly as it would have.
TEST(Checkpoint, StreamTimeAndAgeEvictionSurvive) {
  std::string Text;
  for (int I = 0; I < 60; ++I) {
    Text += "t " + std::to_string(100 + I * 10) + "\n";
    Text += "b " + std::to_string(I % 3) + "\nw 1 " +
            std::to_string(I + 1) + "\nr 1 " + std::to_string(I) + "\nc\n";
  }
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 4;
  Options.WindowAgeTicks = 60;

  ReferenceRun Ref = runWithSnapshots(Text, "native", Options);
  ASSERT_FALSE(Ref.Snapshots.empty());
  EXPECT_GT(Ref.Stats.AgeEvictedTxns, 0u);
  size_t Last = Ref.Snapshots.size() - 1;
  for (size_t Idx : {size_t(0), Last / 2, Last})
    resumeAndCompare(Ref, Ref.Snapshots[Idx], Text, "native", Options,
                     /*Threads=*/1, "time snapshot " + std::to_string(Idx));
}

/// Force-abort bookkeeping (hung-transaction ids, open-transaction set,
/// the anchored stream clock) round-trips through Monitor::saveState —
/// exercised through the API because the native text format cannot hold a
/// transaction open across other sessions' commits.
TEST(Checkpoint, ForceAbortStateSurvivesDirectSaveLoad) {
  MonitorOptions Options;
  Options.Level = IsolationLevel::ReadCommitted;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 2;
  Options.ForceAbortOpenTicks = 50;

  auto FeedPrefix = [&](Monitor &M) {
    SessionId S0 = M.addSession();
    SessionId S1 = M.addSession();
    TxnId Hung = M.beginTxn(S1);
    M.write(Hung, 99, 12345);
    M.advanceTime(100);
    for (int I = 0; I < 6; ++I) {
      TxnId T = M.beginTxn(S0);
      M.write(T, 1, I + 1);
      M.commit(T);
      M.advanceTime(110 + static_cast<uint64_t>(I) * 10);
    }
    return Hung;
  };
  auto FeedSuffix = [&](Monitor &M, TxnId Hung) {
    // The hung session comes back after its transaction was force-aborted:
    // its late operations and commit must be dropped quietly.
    M.write(Hung, 98, 777);
    M.commit(Hung);
    for (int I = 0; I < 4; ++I) {
      TxnId T = M.beginTxn(0);
      M.read(T, 1, I + 3);
      M.commit(T);
    }
  };

  CollectingSink SinkA;
  Monitor A(Options, &SinkA);
  TxnId Hung = FeedPrefix(A);
  EXPECT_GT(A.stats().ForcedAborts, 0u);

  std::string Blob;
  ByteWriter W(Blob);
  A.saveState(W);

  CollectingSink SinkB;
  Monitor B(Options, &SinkB);
  ByteReader R(Blob);
  std::string Err;
  ASSERT_TRUE(B.loadState(R, &Err)) << Err;

  FeedSuffix(A, Hung);
  FeedSuffix(B, Hung);
  CheckReport RA = A.finalize();
  CheckReport RB = B.finalize();
  EXPECT_EQ(RA.Consistent, RB.Consistent);
  ASSERT_EQ(RA.Violations.size(), RB.Violations.size());
  for (size_t I = 0; I < RA.Violations.size(); ++I)
    expectSameViolation(RA.Violations[I], RB.Violations[I],
                        "violation " + std::to_string(I));
  EXPECT_EQ(A.stats().ForcedAborts, B.stats().ForcedAborts);
  EXPECT_EQ(A.stats().CommittedTxns, B.stats().CommittedTxns);
  EXPECT_EQ(A.stats().ReportedViolations, B.stats().ReportedViolations);
  EXPECT_EQ(SinkA.Descriptions.size(),
            SinkB.Descriptions.size() + 0); // A saw none before the cut
  EXPECT_EQ(SinkA.Descriptions, SinkB.Descriptions);
}

//===----------------------------------------------------------------------===//
// Failure modes: corrupted and truncated checkpoints, wrong configuration.
//===----------------------------------------------------------------------===//

namespace {

/// A small valid checkpoint blob to mutate.
std::string makeValidBlob(MonitorOptions &OptionsOut) {
  History H = generated(3, 200, false);
  std::string Text = writeTextHistory(H);
  OptionsOut.Level = IsolationLevel::CausalConsistency;
  OptionsOut.Check.Threads = 1;
  OptionsOut.CheckIntervalTxns = 16;
  ReferenceRun Ref = runWithSnapshots(Text, "native", OptionsOut);
  EXPECT_FALSE(Ref.Snapshots.empty());
  return Ref.Snapshots.empty() ? std::string()
                               : Ref.Snapshots.back().Blob;
}

std::string restoreError(const std::string &Blob,
                         const MonitorOptions &Options) {
  Monitor M(Options);
  std::string MachineState, Err;
  EXPECT_FALSE(restoreCheckpoint(Blob, M, MachineState, &Err));
  return Err;
}

} // namespace

TEST(Checkpoint, CorruptedAndTruncatedFailCleanly) {
  MonitorOptions Options;
  std::string Blob = makeValidBlob(Options);
  ASSERT_FALSE(Blob.empty());

  // Sanity: the pristine blob restores.
  {
    Monitor M(Options);
    std::string MachineState, Err;
    EXPECT_TRUE(restoreCheckpoint(Blob, M, MachineState, &Err)) << Err;
  }

  // A flipped payload byte: checksum mismatch.
  {
    std::string Bad = Blob;
    Bad[Bad.size() / 2] ^= 0x5a;
    EXPECT_NE(restoreError(Bad, Options).find("checksum"),
              std::string::npos);
  }
  // Truncation at many points: header, meta, and deep in the state.
  for (size_t Keep : {size_t(3), size_t(11), size_t(60), Blob.size() / 2,
                      Blob.size() - 1}) {
    std::string Err = restoreError(Blob.substr(0, Keep), Options);
    EXPECT_NE(Err.find("truncated"), std::string::npos)
        << "kept " << Keep << ": " << Err;
  }
  // Garbage: not a checkpoint at all.
  EXPECT_NE(restoreError("definitely not a checkpoint blob", Options)
                .find("not an awdit checkpoint"),
            std::string::npos);
  // A future version is refused up front.
  {
    std::string Bad = Blob;
    Bad[4] = 99; // version field (little-endian u32 at offset 4)
    EXPECT_NE(restoreError(Bad, Options).find("unsupported checkpoint"),
              std::string::npos);
  }
  // Restoring into a monitor at a different isolation level is refused.
  {
    MonitorOptions Wrong = Options;
    Wrong.Level = IsolationLevel::ReadCommitted;
    EXPECT_NE(restoreError(Blob, Wrong).find("isolation level"),
              std::string::npos);
  }

  // Meta decoding survives everything restore rejects, and agrees.
  CheckpointMeta Meta;
  std::string Err;
  ASSERT_TRUE(decodeCheckpointMeta(Blob, Meta, &Err)) << Err;
  EXPECT_EQ(Meta.Format, "native");
  EXPECT_EQ(Meta.Options.Level, IsolationLevel::CausalConsistency);
  EXPECT_GT(Meta.StreamOffset, 0u);
  EXPECT_FALSE(decodeCheckpointMeta(Blob.substr(0, 10), Meta, &Err));
}

TEST(Checkpoint, FileLayerRoundTripsAtomically) {
  MonitorOptions Options;
  std::string Blob = makeValidBlob(Options);
  ASSERT_FALSE(Blob.empty());
  std::string Dir = ::testing::TempDir() + "/awdit_ckpt_test";

  std::string Err;
  ASSERT_TRUE(writeCheckpointFile(Dir, Blob, &Err)) << Err;
  std::string Read;
  ASSERT_TRUE(readCheckpointFile(Dir, Read, &Err)) << Err;
  EXPECT_EQ(Blob, Read);

  // Overwrite goes through the temp file, so a reader never sees a torn
  // checkpoint under the final name.
  ASSERT_TRUE(writeCheckpointFile(Dir, Blob, &Err)) << Err;
  ASSERT_TRUE(readCheckpointFile(Dir, Read, &Err)) << Err;
  EXPECT_EQ(Blob, Read);

  std::string Missing;
  EXPECT_FALSE(readCheckpointFile(Dir + "/nope", Missing, &Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

/// Many independent monitors checkpointed and restored in one process —
/// the multi-tenant server's resume path: distinct levels, cadences, and
/// windows, interleaved save/load and interleaved replay, with every
/// observable compared against that stream's own uninterrupted run (no
/// cross-session state bleed).
TEST(Checkpoint, MultipleIndependentMonitorsRestoreWithoutBleed) {
  struct Tenant {
    std::string Text;
    MonitorOptions Options;
    ReferenceRun Ref;
    // Resumed state:
    std::unique_ptr<CollectingSink> Sink;
    std::unique_ptr<Monitor> M;
    std::unique_ptr<ShardedMonitorIngest> Ingest;
    size_t SnapIdx = 0;
  };
  std::vector<Tenant> Tenants(3);

  Tenants[0].Options.Level = IsolationLevel::CausalConsistency;
  Tenants[0].Options.CheckIntervalTxns = 8;
  Tenants[0].Text = writeTextHistory(generated(61, 400, /*Inject=*/true));
  Tenants[1].Options.Level = IsolationLevel::ReadAtomic;
  Tenants[1].Options.CheckIntervalTxns = 1;
  Tenants[1].Options.WindowTxns = 96;
  Tenants[1].Text = writeTextHistory(generated(62, 400, /*Inject=*/true));
  Tenants[2].Options.Level = IsolationLevel::ReadCommitted;
  Tenants[2].Options.CheckIntervalTxns = 32;
  Tenants[2].Text = writeTextHistory(generated(63, 400, /*Inject=*/false));

  for (Tenant &T : Tenants) {
    T.Options.Check.Threads = 1;
    T.Ref = runWithSnapshots(T.Text, "native", T.Options);
    ASSERT_FALSE(T.Ref.Snapshots.empty());
  }

  // Interleaved restore: every tenant's monitor is rebuilt before any
  // tenant replays, from snapshots at different depths.
  for (size_t I = 0; I < Tenants.size(); ++I) {
    Tenant &T = Tenants[I];
    T.SnapIdx = (T.Ref.Snapshots.size() - 1) * (I + 1) / 4;
    const Snapshot &S = T.Ref.Snapshots[T.SnapIdx];
    T.Sink = std::make_unique<CollectingSink>();
    T.M = std::make_unique<Monitor>(T.Options, T.Sink.get());
    std::string MachineState, Err;
    ASSERT_TRUE(restoreCheckpoint(S.Blob, *T.M, MachineState, &Err))
        << "tenant " << I << ": " << Err;
    T.Ingest = std::make_unique<ShardedMonitorIngest>(*T.M, "native",
                                                      /*Threads=*/1);
    ByteReader MR(MachineState);
    ASSERT_TRUE(T.Ingest->machine().loadState(MR)) << "tenant " << I;
    T.Ingest->primeResume(S.Meta.StreamOffset, S.Meta.LineNo);
  }

  // Interleaved replay: round-robin chunks across the tenants, the way a
  // server's event loop interleaves its clients.
  bool Progress = true;
  std::vector<size_t> Pos(Tenants.size());
  for (size_t I = 0; I < Tenants.size(); ++I)
    Pos[I] = Tenants[I].Ref.Snapshots[Tenants[I].SnapIdx].Meta.StreamOffset;
  while (Progress) {
    Progress = false;
    for (size_t I = 0; I < Tenants.size(); ++I) {
      Tenant &T = Tenants[I];
      if (Pos[I] >= T.Text.size())
        continue;
      size_t Chunk = std::min<size_t>(2048, T.Text.size() - Pos[I]);
      ASSERT_TRUE(T.Ingest->feed(
          std::string_view(T.Text).substr(Pos[I], Chunk)))
          << "tenant " << I << ": " << T.Ingest->errorText();
      Pos[I] += Chunk;
      Progress = true;
    }
  }

  for (size_t I = 0; I < Tenants.size(); ++I) {
    Tenant &T = Tenants[I];
    std::string Context = "tenant " + std::to_string(I);
    EXPECT_NE(T.Ingest->finishStream(),
              ShardedMonitorIngest::EndState::Error)
        << Context << ": " << T.Ingest->errorText();
    CheckReport Report = T.M->finalize();
    const MonitorStats &Stats = T.M->stats();
    const Snapshot &S = T.Ref.Snapshots[T.SnapIdx];

    // Violation stream: exactly this tenant's own post-checkpoint suffix.
    ASSERT_LE(S.ViolationsAtCheckpoint, T.Ref.Descriptions.size())
        << Context;
    std::vector<std::string> ExpectedSuffix(
        T.Ref.Descriptions.begin() +
            static_cast<ptrdiff_t>(S.ViolationsAtCheckpoint),
        T.Ref.Descriptions.end());
    EXPECT_EQ(ExpectedSuffix, T.Sink->Descriptions) << Context;

    // Final report and cumulative stats: the restart (and the presence of
    // the other tenants) is invisible.
    EXPECT_EQ(T.Ref.Report.Consistent, Report.Consistent) << Context;
    ASSERT_EQ(T.Ref.Report.Violations.size(), Report.Violations.size())
        << Context;
    for (size_t V = 0; V < Report.Violations.size(); ++V)
      expectSameViolation(T.Ref.Report.Violations[V], Report.Violations[V],
                          Context + " violation " + std::to_string(V));
    EXPECT_EQ(T.Ref.Stats.IngestedTxns, Stats.IngestedTxns) << Context;
    EXPECT_EQ(T.Ref.Stats.CommittedTxns, Stats.CommittedTxns) << Context;
    EXPECT_EQ(T.Ref.Stats.Flushes, Stats.Flushes) << Context;
    EXPECT_EQ(T.Ref.Stats.ReportedViolations, Stats.ReportedViolations)
        << Context;
    EXPECT_EQ(T.Ref.Stats.EvictedTxns, Stats.EvictedTxns) << Context;
  }
}

//===----------------------------------------------------------------------===//
// Store-backed checkpoints (format v2): the same bit-identical-resume
// contract, now through StoreCheckpointer over a real on-disk segment
// store — including crash images taken at commit boundaries and torn
// mid-commit, and the O(delta) write-cost property that justifies v2.
//===----------------------------------------------------------------------===//

namespace {

namespace fs = std::filesystem;

struct StoreTempDir {
  fs::path Path;
  explicit StoreTempDir(const std::string &Tag) {
    static int Counter = 0;
    Path = fs::temp_directory_path() /
           ("awdit_ckptstore_" + Tag + "_" + std::to_string(::getpid()) +
            "_" + std::to_string(Counter++));
  }
  ~StoreTempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

/// Replays \p Text once more, checkpointing into one store at every flush
/// (the way `awdit monitor --checkpoint-store` does), and photographs the
/// store directory right after selected commits — a crash image at each.
/// Returns the per-commit appended byte deltas.
std::vector<uint64_t> runWithStoreCommits(const std::string &Text,
                                          const std::string &Format,
                                          const MonitorOptions &Options,
                                          const std::string &StoreDir,
                                          const std::vector<size_t> &ImageAt,
                                          std::vector<fs::path> &Images) {
  std::vector<uint64_t> Deltas;
  StoreCheckpointer Ckpt;
  std::string Err;
  EXPECT_TRUE(Ckpt.open(StoreDir, &Err)) << Err;
  CollectingSink Sink;
  Monitor M(Options, &Sink);
  size_t FlushIdx = 0;
  ShardedMonitorIngest Ingest(
      M, Format, /*Threads=*/1, [&](const IngestFlushPoint &P) {
        CheckpointMeta Meta;
        Meta.Format = Format;
        Meta.Options = Options;
        Meta.StreamOffset = P.StreamOffset;
        Meta.LineNo = P.LineNo;
        Meta.CommittedTxns = P.CommittedTxns;
        Meta.Flushes = P.Flushes;
        std::string MachineBlob;
        ByteWriter W(MachineBlob);
        P.Machine.saveState(W);
        uint64_t Before = Ckpt.bytesAppended();
        std::string WErr;
        EXPECT_TRUE(Ckpt.write(P.M, MachineBlob, Meta, &WErr)) << WErr;
        Deltas.push_back(Ckpt.bytesAppended() - Before);
        for (size_t Want : ImageAt)
          if (Want == FlushIdx) {
            fs::path Image = fs::path(StoreDir + ".img." +
                                      std::to_string(FlushIdx));
            fs::copy(StoreDir, Image, fs::copy_options::recursive);
            Images.push_back(Image);
          }
        ++FlushIdx;
      });
  EXPECT_TRUE(Ingest.valid());
  for (size_t Pos = 0; Pos < Text.size(); Pos += 5000)
    if (!Ingest.feed(std::string_view(Text).substr(Pos, 5000)))
      break;
  EXPECT_NE(Ingest.finishStream(), ShardedMonitorIngest::EndState::Error)
      << Ingest.errorText();
  (void)M.finalize();
  return Deltas;
}

/// Opens the store at \p Dir, restores from its last published root, and
/// replays the rest — every observable must match the uninterrupted
/// reference's suffix from the matching flush.
void resumeFromStoreAndCompare(const ReferenceRun &Ref,
                               const std::string &Dir,
                               const std::string &Text,
                               const std::string &Format,
                               const MonitorOptions &Options,
                               unsigned Threads,
                               const std::string &Context) {
  StoreCheckpointer Ckpt;
  std::string Err;
  ASSERT_TRUE(Ckpt.open(Dir, &Err)) << Context << ": " << Err;
  ASSERT_TRUE(Ckpt.hasCheckpoint()) << Context;
  CheckpointMeta Meta;
  ASSERT_TRUE(Ckpt.readMeta(Meta, &Err)) << Context << ": " << Err;
  EXPECT_EQ(Meta.Format, Format) << Context;
  EXPECT_EQ(Meta.Options.Level, Options.Level) << Context;

  // The recovered root corresponds to one of the reference's flushes.
  const Snapshot *RefSnap = nullptr;
  for (const Snapshot &S : Ref.Snapshots)
    if (S.Meta.Flushes == Meta.Flushes && S.Meta.StreamOffset ==
                                              Meta.StreamOffset)
      RefSnap = &S;
  ASSERT_NE(RefSnap, nullptr)
      << Context << ": recovered root (flushes=" << Meta.Flushes
      << ", offset=" << Meta.StreamOffset
      << ") matches no reference flush";

  CollectingSink Sink;
  Monitor M(Options, &Sink);
  std::string MachineState;
  ASSERT_TRUE(Ckpt.restore(M, MachineState, &Err)) << Context << ": " << Err;

  ShardedMonitorIngest Ingest(M, Format, Threads);
  ByteReader MR(MachineState);
  ASSERT_TRUE(Ingest.machine().loadState(MR)) << Context;
  Ingest.primeResume(Meta.StreamOffset, Meta.LineNo);
  std::string_view Rest = std::string_view(Text).substr(Meta.StreamOffset);
  for (size_t Pos = 0; Pos < Rest.size(); Pos += 4096)
    if (!Ingest.feed(Rest.substr(Pos, 4096)))
      break;
  EXPECT_NE(Ingest.finishStream(), ShardedMonitorIngest::EndState::Error)
      << Context << ": " << Ingest.errorText();

  CheckReport Report = M.finalize();
  const MonitorStats &Stats = M.stats();
  ASSERT_LE(RefSnap->ViolationsAtCheckpoint, Ref.Descriptions.size())
      << Context;
  std::vector<std::string> ExpectedSuffix(
      Ref.Descriptions.begin() +
          static_cast<ptrdiff_t>(RefSnap->ViolationsAtCheckpoint),
      Ref.Descriptions.end());
  EXPECT_EQ(ExpectedSuffix, Sink.Descriptions) << Context;
  EXPECT_EQ(Ref.Report.Consistent, Report.Consistent) << Context;
  ASSERT_EQ(Ref.Report.Violations.size(), Report.Violations.size())
      << Context;
  for (size_t I = 0; I < Report.Violations.size(); ++I)
    expectSameViolation(Ref.Report.Violations[I], Report.Violations[I],
                        Context + " violation " + std::to_string(I));
  EXPECT_EQ(Ref.Stats.IngestedTxns, Stats.IngestedTxns) << Context;
  EXPECT_EQ(Ref.Stats.CommittedTxns, Stats.CommittedTxns) << Context;
  EXPECT_EQ(Ref.Stats.Flushes, Stats.Flushes) << Context;
  EXPECT_EQ(Ref.Stats.ReportedViolations, Stats.ReportedViolations)
      << Context;
  EXPECT_EQ(Ref.Stats.EvictedTxns, Stats.EvictedTxns) << Context;
  EXPECT_EQ(Ref.Stats.UnresolvedReads, Stats.UnresolvedReads) << Context;
}

} // namespace

/// The store-backed sweep: crash images photographed right after an early,
/// middle, and late commit each resume bit-identically, single- and
/// multi-threaded, windowed and unwindowed, clean and injected.
class StoreCheckpointRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(StoreCheckpointRoundTrip, ResumeIsBitIdentical) {
  auto [LevelIdx, Window, Inject] = GetParam();
  History H = generated(LevelIdx * 17 + Window + 5, 600, Inject);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = static_cast<IsolationLevel>(LevelIdx);
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 16;
  Options.WindowTxns = static_cast<size_t>(Window);

  ReferenceRun Ref = runWithSnapshots(Text, "native", Options);
  ASSERT_FALSE(Ref.Snapshots.empty());
  size_t Last = Ref.Snapshots.size() - 1;

  StoreTempDir Dir("sweep");
  std::vector<fs::path> Images;
  runWithStoreCommits(Text, "native", Options, Dir.str(),
                      {size_t(0), Last / 2, Last}, Images);
  ASSERT_EQ(Images.size(), 3u);
  for (const fs::path &Image : Images) {
    StoreTempDir Owner("sweep_img"); // adopt for cleanup
    fs::remove_all(Owner.Path);
    fs::rename(Image, Owner.Path);
    std::string Context = "level " + std::to_string(LevelIdx) + " window " +
                          std::to_string(Window) +
                          (Inject ? " injected" : " clean") + " image " +
                          Image.filename().string();
    resumeFromStoreAndCompare(Ref, Owner.str(), Text, "native", Options,
                              /*Threads=*/1, Context + " threads 1");
    resumeFromStoreAndCompare(Ref, Owner.str(), Text, "native", Options,
                              /*Threads=*/3, Context + " threads 3");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StoreCheckpointRoundTrip,
    ::testing::Combine(::testing::Range(0, 3),   // isolation level
                       ::testing::Values(0, 96), // window size
                       ::testing::Bool()));      // inject an anomaly

/// A torn store — the root log truncated or scribbled at a random point,
/// as a crash mid-commit leaves it — recovers to the last published root
/// and resumes from there bit-identically.
TEST(StoreCheckpoint, TornRootLogResumesFromLastPublishedRoot) {
  History H = generated(29, 500, /*Inject=*/true);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 16;
  Options.WindowTxns = 96;

  ReferenceRun Ref = runWithSnapshots(Text, "native", Options);
  ASSERT_FALSE(Ref.Snapshots.empty());
  StoreTempDir Dir("torn");
  std::vector<fs::path> NoImages;
  runWithStoreCommits(Text, "native", Options, Dir.str(), {}, NoImages);

  std::mt19937_64 Rng(7);
  std::string LogPath = Dir.str() + "/roots.awrl";
  for (int Trial = 0; Trial < 8; ++Trial) {
    StoreTempDir Image("torn_img");
    fs::copy(Dir.Path, Image.Path, fs::copy_options::recursive);
    uint64_t LogBytes = fs::file_size(Image.Path / "roots.awrl");
    if (Trial % 2 == 0) {
      // Keep at least one byte short of a full tail record so some root
      // survives; cutting the whole log is SegmentStore's fresh-dir case.
      std::error_code Ec;
      fs::resize_file(Image.Path / "roots.awrl",
                      LogBytes / 2 + Rng() % (LogBytes / 2), Ec);
      ASSERT_FALSE(Ec);
    } else {
      std::ofstream Out(Image.Path / "roots.awrl",
                        std::ios::binary | std::ios::app);
      for (uint64_t I = 0, N = 1 + Rng() % 100; I < N; ++I)
        Out.put(static_cast<char>(Rng()));
    }
    resumeFromStoreAndCompare(Ref, Image.str(), Text, "native", Options,
                              /*Threads=*/1,
                              "torn trial " + std::to_string(Trial));
  }
}

/// The reason v2 exists: a commit appends what changed since the last
/// flush, not the state — so as the state grows, the per-commit cost
/// stays bounded while the v1 snapshot it replaces grows with the state.
/// (The window-scaled version of this claim is BM_CheckpointDelta's gate:
/// at large windows a window must dwarf a flush for the delta to show.)
TEST(StoreCheckpoint, DeltaCommitsStayFractionOfGrowingSnapshot) {
  History H = generated(31, 800, /*Inject=*/false);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 16;
  Options.WindowTxns = 0;

  ReferenceRun Ref = runWithSnapshots(Text, "native", Options);
  ASSERT_GT(Ref.Snapshots.size(), 10u);
  StoreTempDir Dir("delta");
  std::vector<fs::path> NoImages;
  std::vector<uint64_t> Deltas = runWithStoreCommits(
      Text, "native", Options, Dir.str(), {}, NoImages);
  ASSERT_EQ(Deltas.size(), Ref.Snapshots.size());

  // Steady state: skip the warm-up third, average the rest. Each v1 blob
  // is the full state; each v2 delta is what actually changed.
  uint64_t V1Sum = 0, V2Sum = 0, N = 0;
  for (size_t I = Deltas.size() / 3; I < Deltas.size(); ++I) {
    V1Sum += Ref.Snapshots[I].Blob.size();
    V2Sum += Deltas[I];
    ++N;
  }
  ASSERT_GT(N, 0u);
  double V1Avg = static_cast<double>(V1Sum) / static_cast<double>(N);
  double V2Avg = static_cast<double>(V2Sum) / static_cast<double>(N);
  EXPECT_LT(V2Avg * 2, V1Avg)
      << "steady-state v2 delta " << V2Avg << " vs v1 snapshot " << V1Avg;
}

/// Chunked save -> load -> save is byte-identical, marks and bases
/// included: the global-coordinate transform and its inverse cancel
/// exactly, so store-backed state never drifts across restarts.
TEST(StoreCheckpoint, ChunkedSaveLoadSaveIsByteIdentical) {
  History H = generated(37, 500, /*Inject=*/true);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 8;
  Options.WindowTxns = 96;

  CollectingSink Sink;
  Monitor M(Options, &Sink);
  ShardedMonitorIngest Ingest(M, "native", /*Threads=*/1);
  ASSERT_TRUE(Ingest.feed(Text));
  ASSERT_NE(Ingest.finishStream(), ShardedMonitorIngest::EndState::Error)
      << Ingest.errorText();
  ASSERT_GT(M.stats().EvictedTxns, 0u) << "window never evicted";

  std::string Bytes1;
  std::vector<ChunkMark> Marks1;
  uint32_t IdBase1 = 0;
  std::vector<uint64_t> SoBase1;
  M.saveStateChunked(Bytes1, Marks1, IdBase1, SoBase1);
  ASSERT_FALSE(Bytes1.empty());
  ASSERT_FALSE(Marks1.empty());
  EXPECT_GT(IdBase1, 0u) << "eviction should have advanced the id base";

  CollectingSink Sink2;
  Monitor M2(Options, &Sink2);
  std::string Err;
  ASSERT_TRUE(M2.loadStateChunked(Bytes1, IdBase1, SoBase1, &Err)) << Err;

  std::string Bytes2;
  std::vector<ChunkMark> Marks2;
  uint32_t IdBase2 = 0;
  std::vector<uint64_t> SoBase2;
  M2.saveStateChunked(Bytes2, Marks2, IdBase2, SoBase2);
  EXPECT_EQ(Bytes1, Bytes2);
  EXPECT_EQ(IdBase1, IdBase2);
  EXPECT_EQ(SoBase1, SoBase2);
  ASSERT_EQ(Marks1.size(), Marks2.size());
  for (size_t I = 0; I < Marks1.size(); ++I) {
    EXPECT_EQ(Marks1[I].Offset, Marks2[I].Offset) << "mark " << I;
    EXPECT_EQ(Marks1[I].Id, Marks2[I].Id) << "mark " << I;
  }
}

/// Both formats written from one state restore to the same monitor, and an
/// empty or mismatched store fails cleanly — the migration contract.
TEST(StoreCheckpoint, CoexistsWithV1AndFailsCleanly) {
  MonitorOptions Options;
  std::string V1Blob = makeValidBlob(Options);
  ASSERT_FALSE(V1Blob.empty());

  // v1 restore -> v2 write -> v2 restore -> v1 re-encode: same bytes.
  Monitor M(Options);
  std::string MachineState, Err;
  ASSERT_TRUE(restoreCheckpoint(V1Blob, M, MachineState, &Err)) << Err;
  CheckpointMeta Meta;
  ASSERT_TRUE(decodeCheckpointMeta(V1Blob, Meta, &Err)) << Err;

  StoreTempDir Dir("coexist");
  {
    StoreCheckpointer Ckpt;
    ASSERT_TRUE(Ckpt.open(Dir.str(), &Err)) << Err;
    EXPECT_FALSE(Ckpt.hasCheckpoint());
    CheckpointMeta Empty;
    EXPECT_FALSE(Ckpt.readMeta(Empty, &Err));
    ASSERT_TRUE(Ckpt.write(M, MachineState, Meta, &Err)) << Err;
    EXPECT_EQ(Ckpt.commits(), 1u);
  }
  {
    StoreCheckpointer Ckpt;
    ASSERT_TRUE(Ckpt.open(Dir.str(), &Err)) << Err;
    ASSERT_TRUE(Ckpt.hasCheckpoint());
    CheckpointMeta Meta2;
    ASSERT_TRUE(Ckpt.readMeta(Meta2, &Err)) << Err;
    EXPECT_EQ(Meta.StreamOffset, Meta2.StreamOffset);
    EXPECT_EQ(Meta.Flushes, Meta2.Flushes);
    Monitor M2(Options);
    std::string MachineState2;
    ASSERT_TRUE(Ckpt.restore(M2, MachineState2, &Err)) << Err;
    EXPECT_EQ(MachineState, MachineState2);
    EXPECT_EQ(encodeCheckpoint(M, MachineState, Meta),
              encodeCheckpoint(M2, MachineState2, Meta));
  }
  // The layout helpers agree on what is and is not a store.
  EXPECT_TRUE(StoreCheckpointer::isStoreDir(Dir.str()));
  EXPECT_FALSE(StoreCheckpointer::isStoreDir(Dir.str() + "/missing"));
  // removeStoreDir refuses a non-store directory, removes a real one.
  StoreTempDir NotAStore("plain");
  fs::create_directories(NotAStore.Path);
  EXPECT_FALSE(removeStoreDir(NotAStore.str(), &Err));
  ASSERT_TRUE(removeStoreDir(Dir.str(), &Err)) << Err;
  EXPECT_FALSE(fs::exists(Dir.Path));
}
