//===- tests/test_witness.cpp - Witness reporting (§3.4) tests ------------------===//

#include "sim/anomaly_injector.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2;

/// Validates structural integrity of every cycle witness in a report:
/// closed, and every edge is justified (so edges follow session order, wr
/// edges follow read-froms, inferred edges connect committed txns).
void expectWellFormedWitnesses(const History &H, const CheckReport &Report) {
  for (const Violation &V : Report.Violations) {
    if (V.Cycle.empty())
      continue;
    EXPECT_EQ(V.Cycle.back().To, V.Cycle.front().From);
    for (size_t I = 0; I + 1 < V.Cycle.size(); ++I)
      EXPECT_EQ(V.Cycle[I].To, V.Cycle[I + 1].From);
    for (const WitnessEdge &E : V.Cycle) {
      EXPECT_TRUE(H.isCommitted(E.From));
      EXPECT_TRUE(H.isCommitted(E.To));
      switch (E.Kind) {
      case EdgeKind::So:
        EXPECT_EQ(H.soSuccessor(E.From), E.To);
        break;
      case EdgeKind::Wr: {
        bool Found = false;
        for (TxnId W : H.txn(E.To).ReadFroms)
          Found |= W == E.From;
        EXPECT_TRUE(Found) << "wr edge not in read-froms";
        break;
      }
      case EdgeKind::Inferred:
        EXPECT_NE(E.From, E.To);
        break;
      }
    }
  }
}

} // namespace

TEST(Witness, CycleWitnessesAreWellFormed) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 2)}},
      {1, {R(Y, 2), R(X, 1)}},
  });
  for (IsolationLevel Level : AllIsolationLevels) {
    CheckReport Report = checkIsolation(H, Level);
    expectWellFormedWitnesses(H, Report);
  }
}

TEST(Witness, CausalityCycleUsesOnlyBaseEdges) {
  History H = makeHistory({
      {0, {W(X, 1), R(Y, 1)}},
      {1, {W(Y, 1), R(X, 1)}},
  });
  CheckReport Report = checkIsolation(H, IsolationLevel::ReadCommitted);
  ASSERT_FALSE(Report.Consistent);
  bool SawCausality = false;
  for (const Violation &V : Report.Violations) {
    if (V.Kind != ViolationKind::CausalityCycle)
      continue;
    SawCausality = true;
    for (const WitnessEdge &E : V.Cycle)
      EXPECT_NE(E.Kind, EdgeKind::Inferred);
  }
  EXPECT_TRUE(SawCausality);
}

TEST(Witness, MaxWitnessesHonored) {
  // Plant several independent 2-cycles (separate SCCs).
  HistoryBuilder B;
  SessionId S0 = B.addSession();
  SessionId S1 = B.addSession();
  for (int I = 0; I < 5; ++I) {
    Key P = 100 + 2 * I, Q = 101 + 2 * I;
    Value A = 1000 + 2 * I, C = 1001 + 2 * I;
    TxnId TA = B.beginTxn(S0);
    B.write(TA, P, A);
    B.read(TA, Q, C);
    TxnId TB = B.beginTxn(S1);
    B.write(TB, Q, C);
    B.read(TB, P, A);
  }
  std::optional<History> H = B.build();
  ASSERT_TRUE(H);

  CheckOptions Few;
  Few.MaxWitnesses = 2;
  CheckReport Report =
      checkIsolation(*H, IsolationLevel::ReadCommitted, Few);
  EXPECT_FALSE(Report.Consistent);
  EXPECT_LE(Report.Violations.size(), 2u);

  CheckOptions Many;
  Many.MaxWitnesses = 16;
  CheckReport Full =
      checkIsolation(*H, IsolationLevel::ReadCommitted, Many);
  EXPECT_GE(Full.Violations.size(), 2u);
}

TEST(Witness, VerdictOnlyModeStillSound) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), R(X, 1)}},
  });
  CheckOptions VerdictOnly;
  VerdictOnly.MaxWitnesses = 0;
  CheckReport Report =
      checkIsolation(H, IsolationLevel::ReadCommitted, VerdictOnly);
  EXPECT_FALSE(Report.Consistent);
  EXPECT_FALSE(Report.Violations.empty());
}

TEST(Witness, OneCyclePerScc) {
  // A single SCC with many internal cycles must yield one witness.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 2)}},
      {1, {R(Y, 2), R(X, 1)}},
  });
  CheckReport Report = checkIsolation(H, IsolationLevel::ReadAtomic);
  ASSERT_FALSE(Report.Consistent);
  size_t CycleWitnesses = 0;
  for (const Violation &V : Report.Violations)
    CycleWitnesses += !V.Cycle.empty();
  EXPECT_EQ(CycleWitnesses, 1u);
}

TEST(Witness, MinimizesInferredEdges) {
  // §3.4: prefer cycles with few non-(so ∪ wr) edges. In this history the
  // SCC contains a cycle with exactly one inferred edge.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 2)}},
      {1, {R(Y, 2), R(X, 1)}},
  });
  CheckReport Report = checkIsolation(H, IsolationLevel::ReadCommitted);
  ASSERT_FALSE(Report.Consistent);
  for (const Violation &V : Report.Violations) {
    if (V.Cycle.empty())
      continue;
    size_t Inferred = 0;
    for (const WitnessEdge &E : V.Cycle)
      Inferred += E.Kind == EdgeKind::Inferred;
    EXPECT_EQ(Inferred, 1u);
  }
}

TEST(Witness, DescriptionsAreInformative) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), R(X, 1)}},
  });
  CheckReport Report = checkIsolation(H, IsolationLevel::ReadCommitted);
  ASSERT_FALSE(Report.Consistent);
  std::string Desc = Report.Violations.front().describe(H);
  EXPECT_NE(Desc.find("Cycle"), std::string::npos);
  EXPECT_NE(Desc.find("->"), std::string::npos);
}

TEST(Witness, InjectedHistoriesProduceWellFormedWitnesses) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 6;
  P.Txns = 300;
  P.Seed = 5;
  History Base = generateHistory(P);
  for (int KindIdx = 0; KindIdx < 7; ++KindIdx) {
    std::optional<History> H =
        injectAnomaly(Base, static_cast<AnomalyKind>(KindIdx), 77);
    ASSERT_TRUE(H);
    for (IsolationLevel Level : AllIsolationLevels) {
      CheckReport Report = checkIsolation(*H, Level);
      expectWellFormedWitnesses(*H, Report);
    }
  }
}
