//===- tests/test_shrinker.cpp - Violation shrinking tests ----------------------===//

#include "checker/shrinker.h"
#include "sim/anomaly_injector.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {

History noisyBase(uint64_t Seed) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 6;
  P.Txns = 250;
  P.Seed = Seed;
  return generateHistory(P);
}

} // namespace

TEST(Shrinker, AlreadyMinimalStaysIntact) {
  History H = makeHistory({
      {0, {W(1, 1)}},
      {0, {W(1, 2)}},
      {1, {R(1, 2), R(1, 1)}},
  });
  ASSERT_FALSE(consistent(H, IsolationLevel::ReadCommitted));
  ShrinkResult R = shrinkViolation(H, IsolationLevel::ReadCommitted);
  EXPECT_FALSE(consistent(R.Shrunk, IsolationLevel::ReadCommitted));
  EXPECT_LE(R.TxnsAfter, 3u);
  EXPECT_GE(R.TxnsAfter, 2u);
}

/// The headline property: a gadget planted in a large consistent history
/// shrinks back to (almost) just the gadget.
class ShrinkerProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(ShrinkerProperty, ShrinksInjectedAnomalyToCore) {
  auto [KindIdx, Seed] = GetParam();
  const AnomalyKind Kinds[] = {AnomalyKind::FracturedRead,
                               AnomalyKind::NonMonotonicRead,
                               AnomalyKind::CausalViolation,
                               AnomalyKind::CausalityCycle};
  AnomalyKind Kind = Kinds[KindIdx];
  History Base = noisyBase(Seed);
  std::optional<History> Bad = injectAnomaly(Base, Kind, Seed * 7 + 1);
  ASSERT_TRUE(Bad);
  // Pick the strongest level the anomaly violates.
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  ASSERT_FALSE(consistent(*Bad, Level));

  ShrinkResult R = shrinkViolation(*Bad, Level);
  EXPECT_FALSE(consistent(R.Shrunk, Level));
  // The gadgets involve 2-4 transactions; allow a small margin.
  EXPECT_LE(R.TxnsAfter, 8u)
      << anomalyKindName(Kind) << ": " << R.TxnsBefore << " -> "
      << R.TxnsAfter;
  EXPECT_GT(R.TxnsBefore, 100u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShrinkerProperty,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(1, 4)));

TEST(Shrinker, RespectsCheckBudget) {
  History Base = noisyBase(11);
  std::optional<History> Bad =
      injectAnomaly(Base, AnomalyKind::FracturedRead, 3);
  ASSERT_TRUE(Bad);
  ShrinkOptions Tight;
  Tight.MaxChecks = 12;
  ShrinkResult R =
      shrinkViolation(*Bad, IsolationLevel::ReadAtomic, Tight);
  EXPECT_LE(R.ChecksUsed, 13u); // budget + the initial assertion check
  // Still violating, whatever size it reached.
  EXPECT_FALSE(consistent(R.Shrunk, IsolationLevel::ReadAtomic));
}

TEST(Shrinker, OpLevelShrinkDropsIrrelevantReads) {
  // One fat reader whose only load-bearing reads are of x and y.
  History H = makeHistory({
      {0, {W(1, 1)}},
      {0, {W(1, 2), W(2, 2)}},
      {1, {W(10, 5), W(11, 6), W(12, 7)}},
      {2, {R(10, 5), R(11, 6), R(12, 7), R(2, 2), R(1, 1)}},
  });
  ASSERT_FALSE(consistent(H, IsolationLevel::ReadAtomic));
  ShrinkResult R = shrinkViolation(H, IsolationLevel::ReadAtomic);
  EXPECT_FALSE(consistent(R.Shrunk, IsolationLevel::ReadAtomic));
  // The three unrelated reads (and their writer) should be gone.
  size_t Ops = R.Shrunk.numOps();
  EXPECT_LE(Ops, 5u) << "expected just the fractured core";
}

TEST(Shrinker, ReadConsistencyViolationsShrinkToo) {
  History Base = noisyBase(13);
  std::optional<History> Bad =
      injectAnomaly(Base, AnomalyKind::FutureRead, 5);
  ASSERT_TRUE(Bad);
  ShrinkResult R =
      shrinkViolation(*Bad, IsolationLevel::ReadCommitted);
  EXPECT_FALSE(consistent(R.Shrunk, IsolationLevel::ReadCommitted));
  EXPECT_LE(R.TxnsAfter, 3u);
}
