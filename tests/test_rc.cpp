//===- tests/test_rc.cpp - Algorithm 1 (Read Committed) tests -----------------===//

#include "checker/check_rc.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2, Z = 3;

bool rcConsistent(const History &H, SaturationStats *Stats = nullptr) {
  std::vector<Violation> Out;
  return checkRc(H, Out, /*MaxWitnesses=*/4, Stats);
}
} // namespace

TEST(CheckRc, EmptyHistoryConsistent) {
  History H = makeHistory({});
  EXPECT_TRUE(rcConsistent(H));
}

TEST(CheckRc, WriteOnlyHistoryConsistent) {
  History H = makeHistory({
      {0, {W(X, 1), W(Y, 1)}},
      {1, {W(X, 2)}},
  });
  EXPECT_TRUE(rcConsistent(H));
}

TEST(CheckRc, MonotonicReadsConsistent) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 1), R(X, 2)}},
  });
  EXPECT_TRUE(rcConsistent(H));
}

TEST(CheckRc, NonMonotonicReadsAgainstSoInconsistent) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), R(X, 1)}},
  });
  EXPECT_FALSE(rcConsistent(H));
}

TEST(CheckRc, TwoSlotStackScenario) {
  // The regression the paper motivates the two-element stack with
  // (§3.1): r and r_x read from the same transaction t2, and a later
  // r'_x reads x from an so-earlier t1 — the t2 -> t1 inference must not
  // be lost by only remembering the most recent x-writer.
  History H = makeHistory({
      {0, {W(X, 10)}},               // t1
      {0, {W(X, 20), W(Y, 30)}},     // t2
      {1, {R(Y, 30), R(X, 20), R(X, 10)}},
  });
  EXPECT_FALSE(rcConsistent(H));
}

TEST(CheckRc, TwoSlotStackMonotoneVariantConsistent) {
  // Same shape but with monotone read order: must pass.
  History H = makeHistory({
      {0, {W(X, 10)}},
      {0, {W(X, 20), W(Y, 30)}},
      {1, {R(X, 10), R(X, 20), R(Y, 30)}},
  });
  EXPECT_TRUE(rcConsistent(H));
}

TEST(CheckRc, InferenceAcrossDistinctKeys) {
  // t3 observes t2 (via y) before reading x from t1, and t2 writes x:
  // forces t2 co-> t1 which contradicts t1 -so-> t2.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 1)}},
      {1, {R(Y, 1), R(X, 1)}},
  });
  EXPECT_FALSE(rcConsistent(H));
}

TEST(CheckRc, ObservingOlderTxnFirstIsFine) {
  // Fig. 4b: reading t1's x before observing t2 is RC-consistent.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 1)}},
      {1, {R(X, 1), R(Y, 1)}},
  });
  EXPECT_TRUE(rcConsistent(H));
}

TEST(CheckRc, FailsOnReadConsistencyViolation) {
  History H = makeHistory({
      {0, {R(X, 42)}},
  });
  std::vector<Violation> Out;
  EXPECT_FALSE(checkRc(H, Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Kind, ViolationKind::ThinAirRead);
}

TEST(CheckRc, CausalityCycleClassified) {
  // Two transactions reading from each other: a so ∪ wr cycle.
  History H = makeHistory({
      {0, {W(X, 1), R(Y, 1)}},
      {1, {W(Y, 1), R(X, 1)}},
  });
  std::vector<Violation> Out;
  EXPECT_FALSE(checkRc(H, Out));
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out[0].Kind, ViolationKind::CausalityCycle);
}

TEST(CheckRc, WitnessCycleEdgesAreClosed) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), R(X, 1)}},
  });
  std::vector<Violation> Out;
  EXPECT_FALSE(checkRc(H, Out));
  ASSERT_FALSE(Out.empty());
  const std::vector<WitnessEdge> &Cycle = Out[0].Cycle;
  ASSERT_GE(Cycle.size(), 2u);
  EXPECT_EQ(Cycle.back().To, Cycle.front().From);
  for (size_t I = 0; I + 1 < Cycle.size(); ++I)
    EXPECT_EQ(Cycle[I].To, Cycle[I + 1].From);
}

TEST(CheckRc, StatsReportInferredEdges) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {2, {R(X, 1), R(X, 2)}},
  });
  SaturationStats Stats;
  EXPECT_TRUE(rcConsistent(H, &Stats));
  // One inference: t1 (first read) co-> t2 (second read of x).
  EXPECT_EQ(Stats.InferredEdges, 1u);
  EXPECT_GT(Stats.GraphEdges, 0u);
}

TEST(CheckRc, AbortedTxnWritesInvisibleToInference) {
  // The aborted transaction's write to x must not create co' constraints.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 99), W(Y, 99)}, /*Abort=*/true},
      {0, {W(Y, 1)}},
      {1, {R(Y, 1), R(X, 1)}},
  });
  EXPECT_TRUE(rcConsistent(H));
}

TEST(CheckRc, LongerInferredCycleAcrossSessions) {
  // Fig. 1a-like shape with three writers and a reader chain.
  History H = makeHistory({
      {0, {W(X, 1), W(Y, 1)}},
      {1, {W(X, 2)}},
      {2, {W(X, 3)}},
      {2, {W(Z, 1), W(Y, 2)}},
      {3, {R(X, 1), R(X, 2), R(X, 3)}},
      {3, {R(Z, 1), R(Y, 1)}},
  });
  EXPECT_FALSE(rcConsistent(H));
}

TEST(CheckRc, RepeatedReadsFromSameTxnDoNotSelfInfer) {
  History H = makeHistory({
      {0, {W(X, 1), W(Y, 1)}},
      {1, {R(X, 1), R(Y, 1), R(X, 1)}},
  });
  SaturationStats Stats;
  EXPECT_TRUE(rcConsistent(H, &Stats));
  EXPECT_EQ(Stats.InferredEdges, 0u);
}
