//===- tests/test_parallel.cpp - Parallel vs sequential engine tests ---------===//
//
// The parallel-engine battery: on generated CTwitter/TPC-C/RUBiS histories
// (clean, across consistency modes, and with injected anomalies), the
// sharded parallel engine must produce verdicts, violation lists, stats,
// and witness cycles identical to the sequential engine at every isolation
// level and thread count. Also covers the per-key shard index invariants.
//
//===----------------------------------------------------------------------===//

#include "checker/checker.h"
#include "history/key_shard_index.h"
#include "sim/anomaly_injector.h"
#include "support/thread_pool.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

using namespace awdit;
using namespace awdit::test;

namespace {

/// Runs one check with \p Threads workers, forcing the parallel path for
/// Threads > 1 regardless of history size.
CheckReport runWithThreads(const History &H, IsolationLevel Level,
                           unsigned Threads) {
  CheckOptions Options;
  Options.Threads = Threads;
  Options.ParallelThreshold = 0;
  return checkIsolation(H, Level, Options);
}

void expectSameReport(const CheckReport &Seq, const CheckReport &Par,
                      const char *Context) {
  EXPECT_EQ(Seq.Consistent, Par.Consistent) << Context;
  ASSERT_EQ(Seq.Violations.size(), Par.Violations.size()) << Context;
  for (size_t I = 0; I < Seq.Violations.size(); ++I) {
    const Violation &A = Seq.Violations[I], &B = Par.Violations[I];
    EXPECT_EQ(A.Kind, B.Kind) << Context << " violation " << I;
    EXPECT_EQ(A.T, B.T) << Context << " violation " << I;
    EXPECT_EQ(A.OpIndex, B.OpIndex) << Context << " violation " << I;
    EXPECT_EQ(A.Other, B.Other) << Context << " violation " << I;
    ASSERT_EQ(A.Cycle.size(), B.Cycle.size())
        << Context << " violation " << I;
    for (size_t E = 0; E < A.Cycle.size(); ++E) {
      EXPECT_EQ(A.Cycle[E].From, B.Cycle[E].From) << Context;
      EXPECT_EQ(A.Cycle[E].To, B.Cycle[E].To) << Context;
      EXPECT_EQ(A.Cycle[E].Kind, B.Cycle[E].Kind) << Context;
    }
  }
  EXPECT_EQ(Seq.Stats.InferredEdges, Par.Stats.InferredEdges) << Context;
  EXPECT_EQ(Seq.Stats.GraphEdges, Par.Stats.GraphEdges) << Context;
}

void expectParallelMatchesSequential(const History &H, const char *Context) {
  for (IsolationLevel Level : AllIsolationLevels) {
    CheckReport Seq = runWithThreads(H, Level, 1);
    for (unsigned Threads : {2u, 4u}) {
      CheckReport Par = runWithThreads(H, Level, Threads);
      std::string Label = std::string(Context) + " level " +
                          isolationLevelName(Level) + " threads " +
                          std::to_string(Threads);
      expectSameReport(Seq, Par, Label.c_str());
    }
  }
}

} // namespace

/// Sweep over benchmark x consistency mode x seed on clean generated
/// histories: the paper's three named workloads plus the random one.
class ParallelDifferentialClean
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ParallelDifferentialClean, MatchesSequential) {
  auto [BenchIdx, ModeIdx, Seed] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = static_cast<ConsistencyMode>(ModeIdx);
  P.Sessions = 8;
  P.Txns = 1200;
  P.Seed = static_cast<uint64_t>(Seed * 101 + ModeIdx);
  P.AbortProbability = Seed % 2 == 0 ? 0.05 : 0.0;
  History H = generateHistory(P);
  expectParallelMatchesSequential(H, benchmarkName(P.Bench));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelDifferentialClean,
    ::testing::Combine(::testing::Range(0, 4),   // benchmarks
                       ::testing::Range(0, 4),   // consistency modes
                       ::testing::Range(1, 3))); // seeds

/// Sweep over injected anomaly kinds: the violating paths (including
/// witness extraction) must also match exactly.
class ParallelDifferentialInjected
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelDifferentialInjected, MatchesSequential) {
  auto [KindIdx, BenchIdx] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 8;
  P.Txns = 800;
  P.Seed = static_cast<uint64_t>(KindIdx * 31 + BenchIdx + 1);
  History Base = generateHistory(P);
  std::string Err;
  std::optional<History> H = injectAnomaly(
      Base, static_cast<AnomalyKind>(KindIdx), P.Seed * 13 + 1, &Err);
  ASSERT_TRUE(H) << Err;
  expectParallelMatchesSequential(
      *H, anomalyKindName(static_cast<AnomalyKind>(KindIdx)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelDifferentialInjected,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(1, 4)));

/// The default configuration (Threads = 0 = hardware concurrency) must
/// agree with the sequential engine above the parallel threshold.
TEST(ParallelDefaults, AutoThreadsMatchesSequentialAboveThreshold) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Sessions = 16;
  P.Txns = 5000;
  P.Seed = 99;
  History H = generateHistory(P);
  ASSERT_GE(H.numTxns(), CheckOptions().ParallelThreshold);
  for (IsolationLevel Level : AllIsolationLevels) {
    CheckReport Seq = runWithThreads(H, Level, 1);
    CheckReport Def = checkIsolation(H, Level); // default options
    EXPECT_EQ(Seq.Consistent, Def.Consistent)
        << isolationLevelName(Level);
    EXPECT_EQ(Seq.Violations.size(), Def.Violations.size())
        << isolationLevelName(Level);
    EXPECT_EQ(Seq.Stats.InferredEdges, Def.Stats.InferredEdges)
        << isolationLevelName(Level);
  }
}

/// Witness-count limit must behave identically in both engines.
TEST(ParallelDefaults, MaxWitnessesHonored) {
  GenerateParams P;
  P.Bench = Benchmark::Rubis;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 6;
  P.Txns = 600;
  P.Seed = 7;
  History Base = generateHistory(P);
  std::string Err;
  std::optional<History> H =
      injectAnomaly(Base, AnomalyKind::CausalityCycle, 21, &Err);
  ASSERT_TRUE(H) << Err;
  for (size_t MaxW : {size_t(0), size_t(1), size_t(4)}) {
    CheckOptions Options;
    Options.MaxWitnesses = MaxW;
    Options.ParallelThreshold = 0;
    Options.Threads = 1;
    CheckReport Seq = checkIsolation(*H, IsolationLevel::CausalConsistency,
                                     Options);
    Options.Threads = 4;
    CheckReport Par = checkIsolation(*H, IsolationLevel::CausalConsistency,
                                     Options);
    EXPECT_EQ(Seq.Violations.size(), Par.Violations.size())
        << "MaxWitnesses = " << MaxW;
  }
}

/// Key shard index invariants: shards partition the keys; writer lists are
/// grouped by ascending session and so-ordered; reads are in scan order.
TEST(KeyShardIndex, ShardsPartitionKeysWithOrderedEntries) {
  GenerateParams P;
  P.Bench = Benchmark::Tpcc;
  P.Sessions = 8;
  P.Txns = 600;
  P.Seed = 5;
  History H = generateHistory(P);

  constexpr size_t NumShards = 7;
  ThreadPool Pool(4);
  KeyShardIndex Parallel(H, NumShards, Pool);
  KeyShardIndex Sequential(H, NumShards);
  ASSERT_EQ(Parallel.numShards(), NumShards);

  std::set<Key> Seen;
  for (size_t S = 0; S < NumShards; ++S) {
    const std::vector<KeyEntry> &Par = Parallel.shard(S);
    const std::vector<KeyEntry> &Seq = Sequential.shard(S);
    ASSERT_EQ(Par.size(), Seq.size()) << "shard " << S;
    for (size_t I = 0; I < Par.size(); ++I) {
      const KeyEntry &E = Par[I];
      EXPECT_EQ(E.K, Seq[I].K);
      EXPECT_EQ(KeyShardIndex::shardOf(E.K, NumShards), S);
      EXPECT_TRUE(Seen.insert(E.K).second) << "key in two shards";
      ASSERT_EQ(E.WriterSessions.size(), E.WriterLists.size());
      for (size_t W = 0; W + 1 < E.WriterSessions.size(); ++W)
        EXPECT_LT(E.WriterSessions[W], E.WriterSessions[W + 1]);
      for (const std::vector<KeyWriterRef> &List : E.WriterLists) {
        EXPECT_FALSE(List.empty());
        for (size_t W = 0; W + 1 < List.size(); ++W)
          EXPECT_LT(List[W].SoIndex, List[W + 1].SoIndex);
      }
      for (size_t R = 0; R + 1 < E.Reads.size(); ++R)
        EXPECT_LE(E.Reads[R].Session, E.Reads[R + 1].Session);
    }
  }
}
