//===- tests/test_io.cpp - History format round-trip tests ----------------------===//

#include "io/dbcop_format.h"
#include "io/plume_format.h"
#include "io/text_format.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace awdit;
using namespace awdit::test;

namespace {

void expectSameHistory(const History &A, const History &B) {
  ASSERT_EQ(A.numTxns(), B.numTxns());
  ASSERT_EQ(A.numSessions(), B.numSessions());
  ASSERT_EQ(A.numOps(), B.numOps());
  for (TxnId Id = 0; Id < A.numTxns(); ++Id) {
    const Transaction &TA = A.txn(Id), &TB = B.txn(Id);
    EXPECT_EQ(TA.Session, TB.Session);
    EXPECT_EQ(TA.Committed, TB.Committed);
    ASSERT_EQ(TA.Ops.size(), TB.Ops.size());
    for (size_t O = 0; O < TA.Ops.size(); ++O)
      EXPECT_TRUE(TA.Ops[O] == TB.Ops[O]);
  }
}

History sampleHistory(uint64_t Seed) {
  GenerateParams P;
  P.Bench = Benchmark::Rubis;
  P.Mode = ConsistencyMode::ReadCommitted;
  P.Sessions = 5;
  P.Txns = 150;
  P.Seed = Seed;
  P.AbortProbability = 0.1;
  return generateHistory(P);
}

} // namespace

TEST(TextFormat, RoundTripsGeneratedHistories) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    History H = sampleHistory(Seed);
    std::string Err;
    std::optional<History> Back = parseTextHistory(writeTextHistory(H), &Err);
    ASSERT_TRUE(Back) << Err;
    expectSameHistory(H, *Back);
  }
}

TEST(TextFormat, ParsesHandWrittenInput) {
  const char *Input = "# demo\n"
                      "b 0\n"
                      "w 1 10\n"
                      "c\n"
                      "b 1\n"
                      "r 1 10\n"
                      "a\n";
  std::string Err;
  std::optional<History> H = parseTextHistory(Input, &Err);
  ASSERT_TRUE(H) << Err;
  EXPECT_EQ(H->numTxns(), 2u);
  EXPECT_EQ(H->numSessions(), 2u);
  EXPECT_FALSE(H->txn(1).Committed);
}

TEST(TextFormat, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parseTextHistory("w 1 10\n", &Err)); // op before txn
  EXPECT_FALSE(parseTextHistory("b 0\nw 1\nc\n", &Err)); // missing value
  EXPECT_FALSE(parseTextHistory("b 0\nw 1 10\n", &Err)); // unterminated
  EXPECT_FALSE(parseTextHistory("b 0\nb 0\n", &Err));    // nested begin
  EXPECT_FALSE(parseTextHistory("x y z\n", &Err));       // unknown
  EXPECT_NE(Err.find("line"), std::string::npos);
}

TEST(TextFormat, FileRoundTrip) {
  History H = sampleHistory(9);
  std::string Path =
      (std::filesystem::temp_directory_path() / "awdit_io_test.txt")
          .string();
  std::string Err;
  ASSERT_TRUE(saveTextHistoryFile(H, Path, &Err)) << Err;
  std::optional<History> Back = loadTextHistoryFile(Path, &Err);
  ASSERT_TRUE(Back) << Err;
  expectSameHistory(H, *Back);
  std::remove(Path.c_str());
}

TEST(TextFormat, MissingFileFails) {
  std::string Err;
  EXPECT_FALSE(loadTextHistoryFile("/nonexistent/awdit.txt", &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(PlumeFormat, RoundTripsGeneratedHistories) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    History H = sampleHistory(Seed);
    std::string Err;
    std::optional<History> Back =
        parsePlumeHistory(writePlumeHistory(H), &Err);
    ASSERT_TRUE(Back) << Err;
    expectSameHistory(H, *Back);
  }
}

TEST(PlumeFormat, ParsesHandWrittenInput) {
  const char *Input = "0,0,w,5,50\n"
                      "0,0,w,6,60\n"
                      "1,1,r,5,50\n"
                      "1,2,r,6,60\n"
                      "1,2,abort\n";
  std::string Err;
  std::optional<History> H = parsePlumeHistory(Input, &Err);
  ASSERT_TRUE(H) << Err;
  EXPECT_EQ(H->numTxns(), 3u);
  EXPECT_EQ(H->txn(0).Ops.size(), 2u);
  EXPECT_FALSE(H->txn(2).Committed);
}

TEST(PlumeFormat, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parsePlumeHistory("0,0,q,1,2\n", &Err));
  EXPECT_FALSE(parsePlumeHistory("0,w,1,2\n", &Err));
  EXPECT_FALSE(parsePlumeHistory("zero,0,w,1,2\n", &Err));
}

TEST(PlumeFormat, HandlesCrLf) {
  std::string Err;
  std::optional<History> H = parsePlumeHistory("0,0,w,1,10\r\n", &Err);
  ASSERT_TRUE(H) << Err;
  EXPECT_EQ(H->numTxns(), 1u);
}

TEST(DbcopFormat, RoundTripsGeneratedHistories) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    History H = sampleHistory(Seed);
    std::string Err;
    std::optional<History> Back =
        parseDbcopHistory(writeDbcopHistory(H), &Err);
    ASSERT_TRUE(Back) << Err;
    expectSameHistory(H, *Back);
  }
}

TEST(DbcopFormat, ParsesHandWrittenInput) {
  const char *Input = "sessions 2\n"
                      "txn 0 1 2\n"
                      "W 1 10\n"
                      "W 2 20\n"
                      "txn 1 0 1\n"
                      "R 1 10\n";
  std::string Err;
  std::optional<History> H = parseDbcopHistory(Input, &Err);
  ASSERT_TRUE(H) << Err;
  EXPECT_EQ(H->numTxns(), 2u);
  EXPECT_FALSE(H->txn(1).Committed);
}

TEST(DbcopFormat, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parseDbcopHistory("txn 0 1 0\n", &Err)); // missing header
  EXPECT_FALSE(parseDbcopHistory("sessions 1\ntxn 5 1 0\n", &Err));
  EXPECT_FALSE(parseDbcopHistory("sessions 1\ntxn 0 1 2\nW 1 10\n", &Err));
  EXPECT_FALSE(parseDbcopHistory("sessions 1\nW 1 10\n", &Err));
}

TEST(Formats, CrossFormatConversionPreservesVerdicts) {
  History H = sampleHistory(12);
  std::optional<History> ViaPlume = parsePlumeHistory(writePlumeHistory(H));
  std::optional<History> ViaDbcop = parseDbcopHistory(writeDbcopHistory(H));
  ASSERT_TRUE(ViaPlume && ViaDbcop);
  for (IsolationLevel Level : AllIsolationLevels) {
    bool Expected = consistent(H, Level);
    EXPECT_EQ(consistent(*ViaPlume, Level), Expected);
    EXPECT_EQ(consistent(*ViaDbcop, Level), Expected);
  }
}

// Parse errors must point at the offending line — including duplicate
// writes, which used to surface only as a line-less build() failure.
TEST(Formats, DuplicateWriteErrorsCarryLineNumbers) {
  std::string Err;
  EXPECT_FALSE(parseTextHistory("b 0\nw 1 10\nc\nb 0\nw 1 10\nc\n", &Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
  EXPECT_NE(Err.find("duplicate write"), std::string::npos) << Err;

  EXPECT_FALSE(parsePlumeHistory("0,0,w,1,10\n0,1,w,1,10\n", &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  EXPECT_NE(Err.find("duplicate write"), std::string::npos) << Err;

  EXPECT_FALSE(parseDbcopHistory(
      "sessions 1\ntxn 0 1 1\nW 1 10\ntxn 0 1 1\nW 1 10\n", &Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
  EXPECT_NE(Err.find("duplicate write"), std::string::npos) << Err;
}

TEST(Formats, SyntaxErrorsCarryLineNumbers) {
  std::string Err;
  EXPECT_FALSE(parseTextHistory("b 0\nw 1\nc\n", &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  EXPECT_FALSE(parsePlumeHistory("0,0,w,1,10\ngarbage\n", &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  EXPECT_FALSE(parseDbcopHistory("sessions 1\nboom\n", &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}
