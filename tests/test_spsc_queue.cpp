//===- tests/test_spsc_queue.cpp - SPSC queue and packed edge map tests ----===//
//
// The hand-off primitive of the sharded monitor pipeline and the flat
// open-addressing edge map of the saturation engine. The threaded tests are
// the ones the CI ThreadSanitizer job leans on.
//
//===----------------------------------------------------------------------===//

#include "support/packed_edge_map.h"
#include "support/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace awdit;

TEST(SpscQueue, FifoOrderAndWraparound) {
  SpscQueue<int> Q(4); // rounds up; forces many wraps below
  for (int Round = 0; Round < 100; ++Round) {
    EXPECT_TRUE(Q.tryPush(Round * 2));
    EXPECT_TRUE(Q.tryPush(Round * 2 + 1));
    int A = -1, B = -1;
    EXPECT_TRUE(Q.tryPop(A));
    EXPECT_TRUE(Q.tryPop(B));
    EXPECT_EQ(A, Round * 2);
    EXPECT_EQ(B, Round * 2 + 1);
  }
  int X;
  EXPECT_FALSE(Q.tryPop(X));
}

TEST(SpscQueue, TryPushFailsWhenFull) {
  SpscQueue<int> Q(2);
  size_t Pushed = 0;
  while (Q.tryPush(static_cast<int>(Pushed)))
    ++Pushed;
  EXPECT_GE(Pushed, 2u);
  int X;
  ASSERT_TRUE(Q.tryPop(X));
  EXPECT_EQ(X, 0);
  EXPECT_TRUE(Q.tryPush(99)); // freed slot is reusable
}

TEST(SpscQueue, PopReturnsFalseOnceClosedAndDrained) {
  SpscQueue<std::string> Q(8);
  Q.push("a");
  Q.push("b");
  Q.close();
  std::string S;
  EXPECT_TRUE(Q.pop(S));
  EXPECT_EQ(S, "a");
  EXPECT_TRUE(Q.pop(S));
  EXPECT_EQ(S, "b");
  EXPECT_FALSE(Q.pop(S));
  EXPECT_FALSE(Q.pop(S)); // stays closed
}

TEST(SpscQueue, ThreadedTransferPreservesOrderAndContent) {
  SpscQueue<uint64_t> Q(64);
  constexpr uint64_t N = 200000;
  uint64_t Sum = 0;
  std::thread Consumer([&] {
    uint64_t Expected = 0, V;
    while (Q.pop(V)) {
      EXPECT_EQ(V, Expected++);
      Sum += V;
    }
    EXPECT_EQ(Expected, N);
  });
  for (uint64_t I = 0; I < N; ++I)
    Q.push(I);
  Q.close();
  Consumer.join();
  EXPECT_EQ(Sum, N * (N - 1) / 2);
}

TEST(SpscQueue, ThreadedPipelineOfQueues) {
  // reader -> worker -> applier, the sharded-ingest shape.
  SpscQueue<int> A(16), B(16);
  std::thread Worker([&] {
    int V;
    while (A.pop(V))
      B.push(V * 3);
    B.close();
  });
  std::vector<int> Got;
  std::thread Applier([&] {
    int V;
    while (B.pop(V))
      Got.push_back(V);
  });
  for (int I = 0; I < 10000; ++I)
    A.push(I);
  A.close();
  Worker.join();
  Applier.join();
  ASSERT_EQ(Got.size(), 10000u);
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(Got[I], I * 3);
}

TEST(PackedEdgeMap, InsertFindEraseBasics) {
  PackedEdgeMap<uint32_t> M;
  EXPECT_TRUE(M.empty());
  M[5] = 10;
  M[7] += 1;
  EXPECT_EQ(M.size(), 2u);
  ASSERT_NE(M.find(5), nullptr);
  EXPECT_EQ(*M.find(5), 10u);
  EXPECT_EQ(*M.find(7), 1u);
  EXPECT_EQ(M.find(6), nullptr);
  EXPECT_EQ(M.count(5), 1u);
  EXPECT_TRUE(M.erase(5));
  EXPECT_FALSE(M.erase(5));
  EXPECT_EQ(M.find(5), nullptr);
  EXPECT_EQ(M.size(), 1u);
}

TEST(PackedEdgeMap, GrowsAndMatchesReferenceMap) {
  PackedEdgeMap<uint64_t> M;
  std::unordered_map<uint64_t, uint64_t> Ref;
  uint64_t Seed = 12345;
  auto Next = [&Seed] {
    Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return Seed >> 8;
  };
  // Mixed inserts and erases, including clustered keys that stress linear
  // probing and backward-shift deletion.
  for (int I = 0; I < 20000; ++I) {
    uint64_t K = (I % 3 == 0) ? Next() : (Next() & 0x3FF);
    if (I % 5 == 4) {
      EXPECT_EQ(M.erase(K), Ref.erase(K) > 0);
    } else {
      M[K] = K + 1;
      Ref[K] = K + 1;
    }
    ASSERT_EQ(M.size(), Ref.size());
  }
  size_t Seen = 0;
  M.forEach([&](uint64_t K, uint64_t V) {
    ++Seen;
    auto It = Ref.find(K);
    ASSERT_NE(It, Ref.end());
    EXPECT_EQ(V, It->second);
  });
  EXPECT_EQ(Seen, Ref.size());
  for (const auto &[K, V] : Ref) {
    ASSERT_NE(M.find(K), nullptr) << K;
    EXPECT_EQ(*M.find(K), V);
  }
}

TEST(PackedEdgeMap, ClearResets) {
  PackedEdgeMap<int> M;
  for (uint64_t I = 0; I < 100; ++I)
    M[I] = static_cast<int>(I);
  M.clear();
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.find(42), nullptr);
  M[42] = 7;
  EXPECT_EQ(*M.find(42), 7);
}
