//===- tests/test_ra.cpp - Algorithm 2 (Read Atomic) tests --------------------===//

#include "checker/check_ra.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2, Z = 3;

bool raConsistent(const History &H, SaturationStats *Stats = nullptr) {
  std::vector<Violation> Out;
  return checkRa(H, Out, /*MaxWitnesses=*/4, Stats);
}
} // namespace

TEST(RepeatableReads, CleanHistoryPasses) {
  History H = makeHistory({
      {0, {W(X, 1), W(Y, 1)}},
      {1, {R(X, 1), R(Y, 1), R(X, 1)}},
  });
  std::vector<Violation> Out;
  EXPECT_TRUE(checkRepeatableReads(H, Out));
}

TEST(RepeatableReads, TwoWritersSameKeyFlagged) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {2, {R(X, 1), R(X, 2)}},
  });
  std::vector<Violation> Out;
  EXPECT_FALSE(checkRepeatableReads(H, Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Kind, ViolationKind::NonRepeatableRead);
  EXPECT_EQ(Out[0].T, 2u);
}

TEST(RepeatableReads, OwnWriteInterleavedOk) {
  // Reading externally, then writing, then reading the own write is
  // repeatable-read clean (the own writer is skipped).
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1), W(X, 2), R(X, 2)}},
  });
  std::vector<Violation> Out;
  EXPECT_TRUE(checkRepeatableReads(H, Out));
}

TEST(CheckRa, FracturedReadViaSoInconsistent) {
  // The so case of the RA axiom: the session's last writer of x forces
  // itself co-before the read-from transaction, closing a cycle with so.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {0, {R(X, 1)}}, // so-predecessor W(X,2) is skipped.
  });
  EXPECT_FALSE(raConsistent(H));
}

TEST(CheckRa, SkippingUnorderedWriterIsConsistent) {
  // If the bypassed x-writer is so ∪ wr-unordered w.r.t. the read-from
  // transaction, a valid commit order exists (it commits first).
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {1, {R(X, 1)}}, // Reads around its own session's W(X,2): legal.
  });
  EXPECT_TRUE(raConsistent(H));
}

TEST(CheckRa, FracturedReadViaWrInconsistent) {
  // Fig. 4b: the wr case of the RA axiom.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 2)}},
      {1, {R(X, 1), R(Y, 2)}},
  });
  EXPECT_FALSE(raConsistent(H));
}

TEST(CheckRa, AtomicVisibilityConsistent) {
  // Fig. 4c: reading a stale x is fine when no observed transaction
  // rewrote x.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), W(Y, 3)}},
      {2, {R(Y, 3), R(X, 1)}},
  });
  EXPECT_TRUE(raConsistent(H));
}

TEST(CheckRa, SoTransitivityHandledViaChaining) {
  // t2' -so-> t2 -so-> t3 with both writing x: only t2 -> t1 needs to be
  // inferred directly; the verdict must still be inconsistent.
  History H = makeHistory({
      {0, {W(X, 10)}},
      {0, {W(X, 20)}},
      {0, {W(X, 30)}},
      {0, {R(X, 10)}},
  });
  EXPECT_FALSE(raConsistent(H));
}

TEST(CheckRa, ReadYourSessionLatestConsistent) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {0, {R(X, 2)}},
  });
  EXPECT_TRUE(raConsistent(H));
}

TEST(CheckRa, IntersectionOverWriterKeys) {
  // Writer has many keys; the reader reads few: the smaller-set
  // intersection path must still find the fracture.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 2), W(Z, 2), W(4, 2), W(5, 2), W(6, 2)}},
      {1, {R(X, 1), R(Y, 2)}},
  });
  EXPECT_FALSE(raConsistent(H));
}

TEST(CheckRa, IntersectionOverReaderKeys) {
  // Reader reads many keys; writer writes few: the other intersection
  // direction.
  History H = makeHistory({
      {0, {W(4, 1), W(5, 1), W(6, 1), W(7, 1), W(8, 1)}},
      {1, {W(X, 1)}},
      {1, {W(X, 2), W(Y, 2)}},
      {2, {R(4, 1), R(5, 1), R(6, 1), R(7, 1), R(8, 1), R(Y, 2), R(X, 1)}},
  });
  EXPECT_FALSE(raConsistent(H));
}

TEST(CheckRa, StatsCountInferences) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1), W(Y, 1)}},
      {2, {R(Y, 1), R(X, 1)}},
  });
  SaturationStats Stats;
  EXPECT_TRUE(raConsistent(H, &Stats));
  EXPECT_GT(Stats.GraphEdges, 0u);
}

TEST(CheckRa, NonRepeatableReadShortCircuits) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {2, {R(X, 1), R(X, 2)}},
  });
  std::vector<Violation> Out;
  EXPECT_FALSE(checkRa(H, Out));
  EXPECT_EQ(Out[0].Kind, ViolationKind::NonRepeatableRead);
}

TEST(CheckRa, CcOnlyAnomalyPassesRa) {
  // The two-hop causal gadget must not trip RA.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Z, 1)}},
      {1, {R(Z, 1), W(Y, 1)}},
      {2, {R(Y, 1), R(X, 1)}},
  });
  EXPECT_TRUE(raConsistent(H));
}
