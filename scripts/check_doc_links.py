#!/usr/bin/env python3
"""Check that every relative link in the documentation resolves.

Scans README.md and docs/*.md for markdown links, verifies that

  * relative file targets exist in the repository,
  * fragment targets (`#anchor`, alone or after a .md path) match a
    heading in the target file, using GitHub's slugification rules,

and exits non-zero listing every dead link. External links (http/https/
mailto) are not fetched. Run from anywhere: paths resolve against the
repository root (the parent of this script's directory).

Used by the `docs` CI job; run locally with `python3
scripts/check_doc_links.py`.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Inline markdown links/images: [text](target) — target up to the first
# unescaped ')'. Angle-bracketed targets (<...>) are unwrapped below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: strip markup, lowercase, drop
    everything but word characters / spaces / hyphens, spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)  # emphasis
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    """Every anchor GitHub generates for `path` (duplicate headings get
    -1/-2/... suffixes)."""
    seen = {}
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(doc: Path, errors: list) -> None:
    in_fence = False
    for lineno, line in enumerate(
        doc.read_text(encoding="utf-8").splitlines(), 1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1).strip("<>")
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            where = f"{doc.relative_to(ROOT)}:{lineno}"
            path_part, _, frag = target.partition("#")
            if path_part:
                dest = (doc.parent / path_part).resolve()
                if not dest.exists():
                    errors.append(f"{where}: dead link '{target}' "
                                  f"(no such file: {path_part})")
                    continue
            else:
                dest = doc  # bare '#anchor': same file
            if frag:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    errors.append(f"{where}: anchor on non-markdown "
                                  f"target '{target}'")
                elif frag.lower() not in anchors_of(dest):
                    errors.append(f"{where}: dead anchor '#{frag}' "
                                  f"(no matching heading in "
                                  f"{dest.relative_to(ROOT)})")


def main() -> int:
    docs = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    docs = [d for d in docs if d.exists()]
    if len(docs) < 2:
        print("check_doc_links: expected README.md and docs/*.md",
              file=sys.stderr)
        return 1
    errors = []
    for doc in docs:
        check_file(doc, errors)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"check_doc_links: {len(errors)} dead link(s) in "
              f"{len(docs)} file(s)", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({len(docs)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
