#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and fail on regressions.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--max-regression 0.20]
                   [--filter REGEX]

Benchmarks are matched by name. The comparison metric is items_per_second
when present, otherwise inverse real_time (higher is better for both).
Benchmarks present in only one file are reported but never fail the run
(benches come and go across commits); a matched benchmark whose throughput
dropped by more than the threshold fails the run with exit code 1.

A baseline that cannot be parsed (a truncated artifact, a run that died
mid-write, a schema from another tool) is not this change's fault: the
comparison is skipped with exit code 0 and a note, exactly like a missing
baseline. The *current* results failing to parse is this build's problem
and still fails the run.
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "items_per_second" in bench:
            out[name] = float(bench["items_per_second"])
        elif float(bench.get("real_time", 0)) > 0:
            out[name] = 1.0 / float(bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional throughput drop (0.20 = 20%%)")
    parser.add_argument("--filter", default="",
                        help="only compare benchmarks matching this regex")
    args = parser.parse_args()

    try:
        base = load(args.baseline)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"skipping comparison: baseline '{args.baseline}' is not "
              f"usable benchmark JSON ({exc})")
        return 0
    cur = load(args.current)
    if not base:
        print(f"skipping comparison: baseline '{args.baseline}' contains "
              f"no benchmark entries")
        return 0
    pattern = re.compile(args.filter) if args.filter else None

    failed = []
    compared = 0
    for name in sorted(set(base) | set(cur)):
        if pattern and not pattern.search(name):
            continue
        if name not in base:
            print(f"  new        {name}")
            continue
        if name not in cur:
            print(f"  removed    {name}")
            continue
        compared += 1
        ratio = cur[name] / base[name] if base[name] else 1.0
        verdict = "ok"
        if ratio < 1.0 - args.max_regression:
            verdict = "REGRESSION"
            failed.append(name)
        print(f"  {verdict:10s} {name}: {base[name]:.4g} -> {cur[name]:.4g} "
              f"({(ratio - 1.0) * 100:+.1f}%)")

    if failed:
        print(f"FAIL: {len(failed)} of {compared} benchmark(s) regressed "
              f"more than {args.max_regression * 100:.0f}%")
        return 1
    print(f"benchmark comparison passed ({compared} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
