#!/usr/bin/env python3
"""Compare google-benchmark JSON outputs; fail on regressions or poor scaling.

Compare mode (the default):
  compare_bench.py BASELINE.json CURRENT.json [--max-regression 0.20]
                   [--filter REGEX] [--summary-out FILE]

Benchmarks are matched by name. The comparison metric is items_per_second
when present, otherwise inverse real_time (higher is better for both).
Benchmarks present in only one file are reported but never fail the run
(benches come and go across commits); a matched benchmark whose throughput
dropped by more than the threshold fails the run with exit code 1. When one
file carries several entries under the same name (repetitions without
aggregates), their median is the metric.

A baseline that cannot be parsed (a truncated artifact, a run that died
mid-write, a schema from another tool) is not this change's fault: the
comparison is skipped with exit code 0 and a note, exactly like a missing
baseline. The *current* results failing to parse is this build's problem
and still fails the run.

Scaling mode:
  compare_bench.py --scaling CURRENT.json [--bench BM_MonitorShardedIngest]
                   [--base-arg 1] [--test-arg 4] [--min-speedup 1.8]
                   [--require-cores 4] [--summary-out FILE]

Reads one results file containing a thread-count sweep (benchmark arg =
thread count, e.g. BM_MonitorShardedIngest/4/real_time) and fails with exit
code 1 if the test-arg run's throughput is below --min-speedup times the
base-arg run's. On a machine with fewer than --require-cores CPUs the gate
is meaningless (the threads time-slice) and is skipped with exit code 0,
like the unusable-baseline skip above.

Counter-gate mode:
  compare_bench.py --counter-gate CURRENT.json --bench BM_CheckpointDelta/65536
                   --counter reduction_x --min-value 10 [--summary-out FILE]

Reads one results file and fails with exit code 1 unless the named user
counter on the named benchmark is at least --min-value. Unlike throughput
comparisons this needs no baseline artifact: the benchmark itself computes
a ratio (e.g. full-snapshot bytes over delta bytes per checkpoint) and the
gate pins its floor. A missing benchmark or counter fails the run — a gate
that silently stops measuring is worse than a red build.

In both modes a markdown table of the results is appended to the file named
by --summary-out, defaulting to $GITHUB_STEP_SUMMARY when set — so CI runs
surface the deltas on the workflow summary page without artifact spelunking.
"""

import argparse
import json
import os
import re
import statistics
import sys


def load(path):
    """Returns {benchmark name: throughput metric} from one results file.

    Skips google-benchmark aggregate rows (mean/median/stddev of repeated
    runs) and medians duplicate names: with --benchmark_repetitions and
    aggregates suppressed, the same name legitimately appears once per
    repetition, and last-one-wins would silently pick an arbitrary rep.
    """
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "items_per_second" in bench:
            samples.setdefault(name, []).append(float(bench["items_per_second"]))
        elif float(bench.get("real_time", 0)) > 0:
            samples.setdefault(name, []).append(1.0 / float(bench["real_time"]))
    return {name: statistics.median(vals) for name, vals in samples.items()}


def load_counter(path, counter):
    """Returns {benchmark name: median value} for one user counter.

    User counters live as plain keys on each benchmark entry alongside
    real_time/items_per_second; aggregate rows are skipped and repeated
    runs are medianed, mirroring load().
    """
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if counter in bench:
            samples.setdefault(bench["name"], []).append(float(bench[counter]))
    return {name: statistics.median(vals) for name, vals in samples.items()}


def append_summary(path, lines):
    """Appends markdown lines to the step-summary file, if one is in use."""
    if not path:
        return
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as exc:
        print(f"note: could not write summary to '{path}': {exc}")


def run_compare(args, summary_path):
    try:
        base = load(args.files[0])
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"skipping comparison: baseline '{args.files[0]}' is not "
              f"usable benchmark JSON ({exc})")
        return 0
    cur = load(args.files[1])
    if not base:
        print(f"skipping comparison: baseline '{args.files[0]}' contains "
              f"no benchmark entries")
        return 0
    pattern = re.compile(args.filter) if args.filter else None

    failed = []
    compared = 0
    rows = []
    for name in sorted(set(base) | set(cur)):
        if pattern and not pattern.search(name):
            continue
        if name not in base:
            print(f"  new        {name}")
            rows.append((name, "—", f"{cur[name]:.4g}", "new"))
            continue
        if name not in cur:
            print(f"  removed    {name}")
            rows.append((name, f"{base[name]:.4g}", "—", "removed"))
            continue
        compared += 1
        ratio = cur[name] / base[name] if base[name] else 1.0
        verdict = "ok"
        if ratio < 1.0 - args.max_regression:
            verdict = "REGRESSION"
            failed.append(name)
        delta = f"{(ratio - 1.0) * 100:+.1f}%"
        print(f"  {verdict:10s} {name}: {base[name]:.4g} -> {cur[name]:.4g} "
              f"({delta})")
        rows.append((name, f"{base[name]:.4g}", f"{cur[name]:.4g}",
                     f"{delta} {'' if verdict == 'ok' else '❌'}".strip()))

    if rows:
        lines = [f"### Benchmark comparison: `{os.path.basename(args.files[1])}`",
                 "", "| benchmark | baseline | current | delta |",
                 "|---|---:|---:|---:|"]
        lines += [f"| `{n}` | {b} | {c} | {d} |" for n, b, c, d in rows]
        append_summary(summary_path, lines)

    if failed:
        print(f"FAIL: {len(failed)} of {compared} benchmark(s) regressed "
              f"more than {args.max_regression * 100:.0f}%")
        return 1
    print(f"benchmark comparison passed ({compared} compared)")
    return 0


def run_scaling(args, summary_path):
    cores = os.cpu_count() or 1
    if cores < args.require_cores:
        print(f"skipping scaling gate: runner has {cores} CPU(s), "
              f"gate needs {args.require_cores}")
        return 0
    cur = load(args.files[0])

    def metric_for(arg):
        # UseRealTime and friends append suffixes: BM_Foo/4/real_time.
        pat = re.compile(rf"^{re.escape(args.bench)}/{arg}(/|$)")
        vals = [v for name, v in cur.items() if pat.search(name)]
        return statistics.median(vals) if vals else None

    base = metric_for(args.base_arg)
    test = metric_for(args.test_arg)
    if base is None or test is None:
        print(f"FAIL: '{args.files[0]}' lacks {args.bench}/"
              f"{args.base_arg if base is None else args.test_arg} results")
        return 1
    speedup = test / base if base else 0.0
    ok = speedup >= args.min_speedup
    print(f"  {args.bench}: {args.base_arg} thread(s) {base:.4g}, "
          f"{args.test_arg} thread(s) {test:.4g} -> {speedup:.2f}x "
          f"(gate {args.min_speedup:.2f}x, {cores} CPUs)")
    append_summary(summary_path, [
        f"### Scaling gate: `{args.bench}`", "",
        "| threads | throughput | | |",
        "|---:|---:|---|---|",
        f"| {args.base_arg} | {base:.4g} | baseline | |",
        f"| {args.test_arg} | {test:.4g} | {speedup:.2f}x | "
        f"{'✅' if ok else '❌'} gate {args.min_speedup:.2f}x |",
    ])
    if not ok:
        print(f"FAIL: {args.test_arg}-thread throughput is only "
              f"{speedup:.2f}x the {args.base_arg}-thread baseline "
              f"(gate: {args.min_speedup:.2f}x)")
        return 1
    print("scaling gate passed")
    return 0


def run_counter_gate(args, summary_path):
    try:
        cur = load_counter(args.files[0], args.counter)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"FAIL: '{args.files[0]}' is not usable benchmark JSON ({exc})")
        return 1
    # UseRealTime and friends append suffixes: BM_Foo/65536/real_time.
    pat = re.compile(rf"^{re.escape(args.bench)}(/|$)")
    matched = {name: v for name, v in cur.items() if pat.search(name)}
    if not matched:
        print(f"FAIL: '{args.files[0]}' has no '{args.counter}' counter on "
              f"benchmarks matching '{args.bench}'")
        return 1
    value = statistics.median(matched.values())
    ok = value >= args.min_value
    print(f"  {args.bench}: {args.counter} = {value:.4g} "
          f"(gate >= {args.min_value:.4g})")
    append_summary(summary_path, [
        f"### Counter gate: `{args.bench}`", "",
        "| counter | value | gate | |",
        "|---|---:|---:|---|",
        f"| `{args.counter}` | {value:.4g} | >= {args.min_value:.4g} | "
        f"{'✅' if ok else '❌'} |",
    ])
    if not ok:
        print(f"FAIL: {args.counter} is {value:.4g}, below the gate "
              f"{args.min_value:.4g}")
        return 1
    print("counter gate passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="BASELINE.json CURRENT.json (compare mode) or "
                             "CURRENT.json (--scaling)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional throughput drop (0.20 = 20%%)")
    parser.add_argument("--filter", default="",
                        help="only compare benchmarks matching this regex")
    parser.add_argument("--scaling", action="store_true",
                        help="multi-core scaling gate over one results file")
    parser.add_argument("--bench", default="BM_MonitorShardedIngest",
                        help="benchmark family for --scaling")
    parser.add_argument("--base-arg", type=int, default=1,
                        help="baseline thread count for --scaling")
    parser.add_argument("--test-arg", type=int, default=4,
                        help="tested thread count for --scaling")
    parser.add_argument("--min-speedup", type=float, default=1.8,
                        help="required test/base throughput ratio")
    parser.add_argument("--require-cores", type=int, default=4,
                        help="skip the scaling gate below this CPU count")
    parser.add_argument("--counter-gate", action="store_true",
                        help="gate on a user counter in one results file")
    parser.add_argument("--counter", default="reduction_x",
                        help="user counter name for --counter-gate")
    parser.add_argument("--min-value", type=float, default=10.0,
                        help="required counter floor for --counter-gate")
    parser.add_argument("--summary-out", default=None,
                        help="append a markdown table here "
                             "(default: $GITHUB_STEP_SUMMARY when set)")
    args = parser.parse_args()

    summary_path = args.summary_out or os.environ.get("GITHUB_STEP_SUMMARY")
    if args.scaling and args.counter_gate:
        parser.error("--scaling and --counter-gate are mutually exclusive")
    expected = 1 if args.scaling or args.counter_gate else 2
    if len(args.files) != expected:
        parser.error(f"expected {expected} file(s) for this mode, "
                     f"got {len(args.files)}")
    if args.scaling:
        return run_scaling(args, summary_path)
    if args.counter_gate:
        return run_counter_gate(args, summary_path)
    return run_compare(args, summary_path)


if __name__ == "__main__":
    sys.exit(main())
