#!/usr/bin/env python3
"""Unit tests for compare_bench.py (stdlib only; wired into ctest).

Runs the script as a subprocess — the exit code *is* the CI contract — over
temp-file benchmark JSON: added/removed benchmarks must be tolerated,
regressions must fail, duplicate names must aggregate instead of
last-one-wins, unusable baselines must skip cleanly, and the --scaling gate
must pass/fail/skip by speedup and core count.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def bench_json(entries):
    return {"benchmarks": [
        {"name": name, "run_type": run_type, "items_per_second": ips}
        for name, ips, run_type in entries
    ]}


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_script(self, *argv, summary=None):
        env = dict(os.environ)
        env.pop("GITHUB_STEP_SUMMARY", None)
        if summary:
            env["GITHUB_STEP_SUMMARY"] = summary
        proc = subprocess.run([sys.executable, SCRIPT, *argv],
                              capture_output=True, text=True, env=env)
        return proc.returncode, proc.stdout + proc.stderr

    # --- compare mode ---

    def test_identical_results_pass(self):
        base = self.write("base.json", bench_json([("BM_A", 100.0, "iteration")]))
        cur = self.write("cur.json", bench_json([("BM_A", 101.0, "iteration")]))
        code, out = self.run_script(base, cur)
        self.assertEqual(code, 0, out)

    def test_regression_fails(self):
        base = self.write("base.json", bench_json([("BM_A", 100.0, "iteration")]))
        cur = self.write("cur.json", bench_json([("BM_A", 70.0, "iteration")]))
        code, out = self.run_script(base, cur, "--max-regression", "0.20")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_added_and_removed_benchmarks_are_tolerated(self):
        base = self.write("base.json", bench_json(
            [("BM_A", 100.0, "iteration"), ("BM_Gone", 50.0, "iteration")]))
        cur = self.write("cur.json", bench_json(
            [("BM_A", 99.0, "iteration"), ("BM_New", 10.0, "iteration")]))
        code, out = self.run_script(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("new", out)
        self.assertIn("removed", out)

    def test_duplicate_names_aggregate_by_median(self):
        # Three repetitions of BM_A in the baseline: 90/100/110 -> median
        # 100. A current value of 85 is a 15% drop — within a 20% gate. If
        # load() kept last-one-wins (the old bug), the baseline would be 110
        # and 85 would be a 23% drop, failing spuriously.
        base = self.write("base.json", bench_json(
            [("BM_A", 90.0, "iteration"), ("BM_A", 110.0, "iteration"),
             ("BM_A", 100.0, "iteration")]))
        cur = self.write("cur.json", bench_json([("BM_A", 85.0, "iteration")]))
        code, out = self.run_script(base, cur, "--max-regression", "0.20")
        self.assertEqual(code, 0, out)

    def test_aggregate_rows_are_ignored(self):
        base = self.write("base.json", bench_json(
            [("BM_A", 100.0, "iteration"), ("BM_A_mean", 9999.0, "aggregate")]))
        cur = self.write("cur.json", bench_json([("BM_A", 95.0, "iteration")]))
        code, out = self.run_script(base, cur)
        self.assertEqual(code, 0, out)
        self.assertNotIn("BM_A_mean", out)

    def test_malformed_baseline_skips_cleanly(self):
        base = self.write("base.json", "not json {")
        cur = self.write("cur.json", bench_json([("BM_A", 100.0, "iteration")]))
        code, out = self.run_script(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("skipping comparison", out)

    def test_empty_baseline_skips_cleanly(self):
        base = self.write("base.json", {"benchmarks": []})
        cur = self.write("cur.json", bench_json([("BM_A", 100.0, "iteration")]))
        code, out = self.run_script(base, cur)
        self.assertEqual(code, 0, out)

    def test_malformed_current_fails(self):
        base = self.write("base.json", bench_json([("BM_A", 100.0, "iteration")]))
        cur = self.write("cur.json", "not json {")
        code, _ = self.run_script(base, cur)
        self.assertNotEqual(code, 0)

    def test_summary_table_written(self):
        base = self.write("base.json", bench_json([("BM_A", 100.0, "iteration")]))
        cur = self.write("cur.json", bench_json([("BM_A", 110.0, "iteration")]))
        summary = os.path.join(self.dir.name, "summary.md")
        code, out = self.run_script(base, cur, summary=summary)
        self.assertEqual(code, 0, out)
        with open(summary) as f:
            text = f.read()
        self.assertIn("| benchmark | baseline | current | delta |", text)
        self.assertIn("`BM_A`", text)
        self.assertIn("+10.0%", text)

    # --- scaling mode ---

    def scaling_file(self, t1, t4):
        return self.write("scale.json", bench_json(
            [("BM_MonitorShardedIngest/1/real_time", t1, "iteration"),
             ("BM_MonitorShardedIngest/2/real_time", (t1 + t4) / 2, "iteration"),
             ("BM_MonitorShardedIngest/4/real_time", t4, "iteration")]))

    def test_scaling_gate_passes(self):
        cur = self.scaling_file(100.0, 250.0)
        code, out = self.run_script("--scaling", cur, "--min-speedup", "1.8",
                                    "--require-cores", "1")
        self.assertEqual(code, 0, out)
        self.assertIn("2.50x", out)

    def test_scaling_gate_fails_below_threshold(self):
        cur = self.scaling_file(100.0, 120.0)
        code, out = self.run_script("--scaling", cur, "--min-speedup", "1.8",
                                    "--require-cores", "1")
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL", out)

    def test_scaling_gate_skips_on_small_runner(self):
        cur = self.scaling_file(100.0, 120.0)  # would fail if it ran
        code, out = self.run_script("--scaling", cur, "--min-speedup", "1.8",
                                    "--require-cores", "100000")
        self.assertEqual(code, 0, out)
        self.assertIn("skipping scaling gate", out)

    def test_scaling_gate_fails_on_missing_entries(self):
        cur = self.write("scale.json", bench_json(
            [("BM_MonitorShardedIngest/1/real_time", 100.0, "iteration")]))
        code, out = self.run_script("--scaling", cur, "--require-cores", "1")
        self.assertEqual(code, 1, out)

    def test_scaling_summary_written(self):
        cur = self.scaling_file(100.0, 250.0)
        summary = os.path.join(self.dir.name, "summary.md")
        code, out = self.run_script("--scaling", cur, "--require-cores", "1",
                                    summary=summary)
        self.assertEqual(code, 0, out)
        with open(summary) as f:
            text = f.read()
        self.assertIn("Scaling gate", text)
        self.assertIn("2.50x", text)

    def test_wrong_file_count_is_a_usage_error(self):
        cur = self.scaling_file(100.0, 250.0)
        code, _ = self.run_script(cur)  # compare mode wants two files
        self.assertEqual(code, 2)

    # --- counter-gate mode ---

    def counter_file(self, reduction):
        payload = bench_json(
            [("BM_CheckpointDelta/65536", 100.0, "iteration"),
             ("BM_CheckpointDelta/4096", 200.0, "iteration")])
        payload["benchmarks"][0]["reduction_x"] = reduction
        payload["benchmarks"][1]["reduction_x"] = 1.5  # must not be matched
        return self.write("counters.json", payload)

    def test_counter_gate_passes(self):
        cur = self.counter_file(12.5)
        code, out = self.run_script(
            "--counter-gate", cur, "--bench", "BM_CheckpointDelta/65536",
            "--counter", "reduction_x", "--min-value", "10")
        self.assertEqual(code, 0, out)
        self.assertIn("12.5", out)

    def test_counter_gate_fails_below_floor(self):
        cur = self.counter_file(7.0)
        code, out = self.run_script(
            "--counter-gate", cur, "--bench", "BM_CheckpointDelta/65536",
            "--counter", "reduction_x", "--min-value", "10")
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL", out)

    def test_counter_gate_matches_exact_arg_only(self):
        # The 4096 row carries reduction_x=1.5; gating on /65536 must not
        # see it, and /409 must not prefix-match /4096.
        cur = self.counter_file(12.5)
        code, out = self.run_script(
            "--counter-gate", cur, "--bench", "BM_CheckpointDelta/409",
            "--counter", "reduction_x", "--min-value", "1")
        self.assertEqual(code, 1, out)
        self.assertIn("no 'reduction_x' counter", out)

    def test_counter_gate_fails_on_missing_counter(self):
        cur = self.write("counters.json", bench_json(
            [("BM_CheckpointDelta/65536", 100.0, "iteration")]))
        code, out = self.run_script(
            "--counter-gate", cur, "--bench", "BM_CheckpointDelta/65536")
        self.assertEqual(code, 1, out)

    def test_counter_gate_summary_written(self):
        cur = self.counter_file(12.5)
        summary = os.path.join(self.dir.name, "summary.md")
        code, out = self.run_script(
            "--counter-gate", cur, "--bench", "BM_CheckpointDelta/65536",
            summary=summary)
        self.assertEqual(code, 0, out)
        with open(summary) as f:
            text = f.read()
        self.assertIn("Counter gate", text)
        self.assertIn("reduction_x", text)

    def test_scaling_and_counter_gate_are_exclusive(self):
        cur = self.counter_file(12.5)
        code, _ = self.run_script("--scaling", "--counter-gate", cur)
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
