#!/usr/bin/env python3
"""Validate an awdit /metrics scrape for Prometheus well-formedness.

    check_metrics.py PAGE.txt [--require-defaults] [--require NAME ...]

Checks, in order of how often real exporters get them wrong:

  1. Every sample line's family has a `# HELP` and a `# TYPE` comment,
     and they appear before the first sample of that family.
  2. Histogram families are complete: for every label combination there
     is a `_bucket{le="+Inf"}`, a `_sum`, and a `_count`; bucket counts
     are monotone non-decreasing in `le`; the `+Inf` bucket equals
     `_count`; `le` bounds are strictly increasing and parse as numbers.
  3. Counter/gauge sample values parse as numbers (no NaN smuggling).
  4. Every name passed via --require (or the built-in required list with
     --require-defaults) is present as a family on the page.

Exit codes: 0 clean, 1 validation failure, 2 usage/IO error. All findings
are printed, not just the first, so one CI run shows the full damage.
"""

import argparse
import math
import re
import sys

# The series CI insists on after `awdit serve --metrics` has taken
# traffic. Histogram families are listed by family name (the checker
# expands them to _bucket/_sum/_count); plain families by series name.
REQUIRED_DEFAULTS = [
    "awdit_server_sessions_live",
    "awdit_server_sessions_created_total",
    "awdit_server_txns_committed_total",
    "awdit_server_flushes_total",
    "awdit_server_poll_max_stall_micros",
    "awdit_server_poll_max_stall_micros_lifetime",
    # The observability-core histogram families.
    "awdit_flush_duration_seconds",
    "awdit_flush_phase_duration_seconds",
    "awdit_ingest_stage_duration_seconds",
    "awdit_ingest_queue_wait_seconds",
    "awdit_ingest_queue_depth",
    "awdit_checkpoint_write_seconds",
    "awdit_server_pump_seconds",
    "awdit_server_hello_seconds",
    "awdit_server_output_queue_seconds",
    "awdit_server_outq_depth_bytes",
]

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def family_of(name):
    """The family a sample belongs to: histogram suffixes fold in."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(text):
    if not text:
        return {}
    labels = dict(LABEL_RE.findall(text))
    # Whatever the regex didn't consume is malformed label syntax.
    leftover = LABEL_RE.sub("", text).replace(",", "").strip()
    if leftover:
        return None
    return labels


def le_key(labels):
    """The label set identifying one histogram series, `le` excluded."""
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("page", help="a saved /metrics response body")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this family is present (repeatable)")
    ap.add_argument("--require-defaults", action="store_true",
                    help="also require the built-in awdit series list")
    args = ap.parse_args()

    try:
        with open(args.page, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    errors = []
    helped, typed = set(), set()
    types = {}
    # family -> series-key -> list of (le, cumulative count)
    hist_buckets = {}
    hist_sums = {}
    hist_counts = {}
    seen_families = set()

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                errors.append(f"line {lineno}: malformed HELP comment")
                continue
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: malformed TYPE comment")
                continue
            typed.add(parts[2])
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        family = family_of(name)
        labels = parse_labels(m.group("labels"))
        if labels is None:
            errors.append(f"line {lineno}: malformed labels: {line!r}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: non-numeric value for {name}: "
                f"{m.group('value')!r}")
            continue
        if math.isnan(value):
            errors.append(f"line {lineno}: NaN value for {name}")
            continue

        if family not in seen_families:
            seen_families.add(family)
            if family not in helped:
                errors.append(
                    f"line {lineno}: family {family} has a sample before "
                    f"(or without) its # HELP")
            if family not in typed:
                errors.append(
                    f"line {lineno}: family {family} has a sample before "
                    f"(or without) its # TYPE")

        if name.endswith("_bucket") and "le" in labels:
            le_text = labels["le"]
            le = math.inf if le_text == "+Inf" else None
            if le is None:
                try:
                    le = float(le_text)
                except ValueError:
                    errors.append(
                        f"line {lineno}: bad le bound {le_text!r} on "
                        f"{family}")
                    continue
            hist_buckets.setdefault(family, {}).setdefault(
                le_key(labels), []).append((le, value, lineno))
        elif name.endswith("_sum") and types.get(family) == "histogram":
            hist_sums.setdefault(family, {})[le_key(labels)] = value
        elif name.endswith("_count") and types.get(family) == "histogram":
            hist_counts.setdefault(family, {})[le_key(labels)] = value

    # Histogram shape checks, one series (label set) at a time.
    for family, series in sorted(hist_buckets.items()):
        for key, buckets in sorted(series.items()):
            where = (f"{family}{{{', '.join('%s=%s' % kv for kv in key)}}}"
                     if key else family)
            bounds = [b[0] for b in buckets]
            if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                errors.append(
                    f"{where}: le bounds not strictly increasing")
            counts = [b[1] for b in buckets]
            if any(nxt < cur for cur, nxt in zip(counts, counts[1:])):
                errors.append(
                    f"{where}: bucket counts decrease as le grows")
            if not buckets or buckets[-1][0] != math.inf:
                errors.append(f"{where}: missing le=\"+Inf\" bucket")
            else:
                count = hist_counts.get(family, {}).get(key)
                if count is None:
                    errors.append(f"{where}: missing _count sample")
                elif buckets[-1][1] != count:
                    errors.append(
                        f"{where}: +Inf bucket {buckets[-1][1]:g} != "
                        f"_count {count:g}")
            if hist_sums.get(family, {}).get(key) is None:
                errors.append(f"{where}: missing _sum sample")

    required = list(args.require)
    if args.require_defaults:
        required += REQUIRED_DEFAULTS
    for name in required:
        if name not in seen_families:
            errors.append(f"required series missing from page: {name}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        print(f"{len(errors)} problem(s) in {args.page}")
        return 1
    n_hist = len(hist_buckets)
    print(f"OK: {len(seen_families)} families ({n_hist} histograms), "
          f"{len(required)} required series present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
