//===- tools/awdit.cpp - The AWDIT command-line tester ----------------------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The awdit command-line tool: check history files against weak isolation
/// levels, print history statistics, generate benchmark histories with the
/// database simulator, and emit §4 reduction histories.
///
/// \code
///   awdit check <file> --level rc|ra|cc [--format native|plume|dbcop]
///   awdit monitor <file|-> --level rc|ra|cc [--format native|plume|dbcop]
///       [--interval N] [--window N] [--window-age T] [--force-abort T]
///   awdit stats <file> [--format ...]
///   awdit generate --bench c-twitter --sessions 50 --txns 1000 ...
///       --mode causal --seed 7 --out history.txt [--inject <anomaly>]
///   awdit reduce --nodes 64 --edge-prob 0.1 --variant general --out h.txt
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "checker/checker.h"
#include "checker/checkpoint.h"
#include "checker/monitor.h"
#include "checker/shrinker.h"
#include "checker/stats_snapshot.h"
#include "checker/violation_sink.h"
#include "history/history_stats.h"
#include "io/dbcop_format.h"
#include "io/plume_format.h"
#include "io/sharded_ingest.h"
#include "io/stream_parser.h"
#include "io/text_format.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "reduction/reductions.h"
#include "server/server.h"
#include "sim/anomaly_injector.h"
#include "support/serialize.h"
#include "support/thread_pool.h"
#include "workload/generator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace awdit;

namespace {

/// Parsed command-line flags: everything after the positional arguments.
struct Flags {
  std::map<std::string, std::string> Values;

  const std::string *get(const std::string &Name) const {
    auto It = Values.find(Name);
    return It == Values.end() ? nullptr : &It->second;
  }

  std::string getOr(const std::string &Name, const std::string &Def) const {
    const std::string *V = get(Name);
    return V ? *V : Def;
  }
};

/// Parses flag --\p Name as an unsigned integer, exiting with a clean
/// message (instead of an uncaught std::stoul throw) on garbage input.
uint64_t numFlag(const Flags &F, const std::string &Name,
                 const std::string &Def) {
  std::string Text = F.getOr(Name, Def);
  uint64_t Value = 0;
  size_t Used = 0;
  try {
    // stoull would silently wrap negatives ("-1" -> 2^64-1); require a
    // plain digit string.
    if (!Text.empty() && Text.find_first_not_of("0123456789") ==
                             std::string::npos)
      Value = std::stoull(Text, &Used);
  } catch (...) {
  }
  if (Used == 0 || Used != Text.size()) {
    std::fprintf(stderr, "error: --%s expects a number, got '%s'\n",
                 Name.c_str(), Text.c_str());
    std::exit(2);
  }
  return Value;
}

/// Parses flag --\p Name as a floating-point number, with the same clean
/// failure mode as numFlag.
double floatFlag(const Flags &F, const std::string &Name,
                 const std::string &Def) {
  std::string Text = F.getOr(Name, Def);
  double Value = 0;
  size_t Used = 0;
  try {
    Value = std::stod(Text, &Used);
  } catch (...) {
  }
  if (Used == 0 || Used != Text.size()) {
    std::fprintf(stderr, "error: --%s expects a number, got '%s'\n",
                 Name.c_str(), Text.c_str());
    std::exit(2);
  }
  return Value;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  awdit check <file> --level rc|ra|cc [--format native|plume|dbcop]"
      " [--witnesses N]\n"
      "                 [--threads N (0 = all cores, 1 = sequential)]"
      " [--json]\n"
      "  awdit batch <file>... --level rc|ra|cc|all [--format F]"
      " [--jobs N] [--witnesses N] [--json]\n"
      "  awdit monitor <file|-> --level rc|ra|cc"
      " [--format native|plume|dbcop]\n"
      "                 [--interval N] [--window N] [--window-edges N]\n"
      "                 [--window-age TICKS] [--force-abort TICKS]"
      " [--witnesses N] [--json]\n"
      "                 [--threads N (0 = auto, 1 = the legacy"
      " single-threaded path;\n"
      "                  N >= 2 shards parsing across N-1 workers +"
      " 1 applier)]\n"
      "                 [--checkpoint DIR (write a restartable snapshot"
      " of the monitor\n"
      "                  every K checking passes; K set by"
      " --checkpoint-interval, default 16)]\n"
      "                 [--checkpoint-store DIR (like --checkpoint, but"
      " append-only\n"
      "                  copy-on-write segment store: each checkpoint"
      " writes only the\n"
      "                  pages that changed — O(delta), not O(state))]\n"
      "                 [--resume DIR (restart from DIR's snapshot —"
      " either layout,\n"
      "                  autodetected: seeks the stream,"
      " restores all state, emits exactly the"
      " violations an\n"
      "                  uninterrupted run would emit from the snapshot"
      " on; other\n"
      "                  flags must match the snapshot or be omitted)]\n"
      "                 [--kill-after-flushes N (testing aid: SIGKILL"
      " self after N\n"
      "                  checking passes, for kill/resume drills)]\n"
      "                 [--stats-interval SEC (print a one-line stats"
      " summary — counters\n"
      "                  plus p50/p99 flush latency over the interval —"
      " to stderr every\n"
      "                  SEC seconds, at checking-pass boundaries)]\n"
      "                 [--trace FILE (record spans for the whole run and"
      " write a\n"
      "                  Chrome-trace JSON file at the end; open it in"
      " Perfetto)]\n"
      "  awdit serve --port P [--host ADDR (default 127.0.0.1)]"
      " [--metrics-port P]\n"
      "                 [--checkpoint-dir DIR (persist per-stream"
      " snapshots; a restarted\n"
      "                  server resumes every tenant)]"
      " [--checkpoint-store-dir DIR (same,\n"
      "                  as per-stream copy-on-write segment stores:"
      " O(delta) writes)]\n"
      "                 [--sink-dir DIR"
      " (per-stream JSONL\n"
      "                  violation logs)] [--threads N] [--idle-timeout"
      " SEC (default 300)]\n"
      "                 [--checkpoint-interval FLUSHES (default 16)]\n"
      "                 [--shard-hot-sessions N (threads per hot session;"
      " 0 off,\n"
      "                  default auto: 4 when the pool has >= 4)]"
      " [--hot-bytes-per-sec B]\n"
      "                 [--auth-token SECRET (require HELLO ..."
      " token=SECRET; rejected\n"
      "                  sessions never create state)]\n"
      "                 [--max-inbox-bytes B (per-session inbox"
      " backpressure quota;\n"
      "                  default/cap for HELLO inbox-bytes=,"
      " default 4MiB)]\n"
      "                 [--max-outq-bytes B (per-connection output-queue"
      " quota; a client\n"
      "                  not reading past this is disconnected;"
      " default 8MiB)]\n"
      "                 [--max-window-bytes B (per-tenant window-memory"
      " quota; over-quota\n"
      "                  streams get 'ERR quota' and wedge;"
      " default unlimited)]\n"
      "                 [--sock-sndbuf B (SO_SNDBUF for client sockets;"
      " testing/tuning)]\n"
      "                 [--trace-dir DIR (where the TRACE dump verb writes"
      " Chrome-trace\n"
      "                  JSON files; without it TRACE dump is rejected)]\n"
      "                 (wire protocol: docs/PROTOCOL.md; operations:"
      " docs/OPERATIONS.md)\n"
      "  awdit stats <file> [--format native|plume|dbcop]\n"
      "  awdit generate --bench random|c-twitter|tpc-c|rubis"
      " [--sessions N] [--txns N]\n"
      "                 [--mode serializable|causal|read-atomic|"
      "read-committed]\n"
      "                 [--seed S] [--abort-prob P] [--inject ANOMALY]"
      " --out FILE [--format F]\n"
      "  awdit reduce --nodes N [--edge-prob P] [--seed S]"
      " [--variant general|ra2|rc1] --out FILE\n"
      "  awdit shrink <file> --level rc|ra|cc --out FILE"
      " [--format F] [--max-checks N]\n");
  return 2;
}

std::optional<History> loadHistory(const std::string &Path,
                                   const std::string &Format,
                                   std::string *Err) {
  std::ifstream In(Path);
  if (!In) {
    *Err = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  if (Format == "native")
    return parseTextHistory(Text, Err);
  if (Format == "plume")
    return parsePlumeHistory(Text, Err);
  if (Format == "dbcop")
    return parseDbcopHistory(Text, Err);
  *Err = "unknown format '" + Format + "'";
  return std::nullopt;
}

bool saveHistory(const History &H, const std::string &Path,
                 const std::string &Format, std::string *Err) {
  std::string Text;
  if (Format == "native")
    Text = writeTextHistory(H);
  else if (Format == "plume")
    Text = writePlumeHistory(H);
  else if (Format == "dbcop")
    Text = writeDbcopHistory(H);
  else {
    *Err = "unknown format '" + Format + "'";
    return false;
  }
  std::ofstream Out(Path);
  if (!Out) {
    *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << Text;
  return true;
}

std::optional<AnomalyKind> parseAnomaly(const std::string &Name) {
  if (Name == "thin-air")
    return AnomalyKind::ThinAirRead;
  if (Name == "aborted-read")
    return AnomalyKind::AbortedRead;
  if (Name == "future-read")
    return AnomalyKind::FutureRead;
  if (Name == "fractured-read")
    return AnomalyKind::FracturedRead;
  if (Name == "non-monotonic-read")
    return AnomalyKind::NonMonotonicRead;
  if (Name == "causal-violation")
    return AnomalyKind::CausalViolation;
  if (Name == "causality-cycle")
    return AnomalyKind::CausalityCycle;
  return std::nullopt;
}

/// Serializes one file's check result as a single JSON object (one line):
/// verdict, violations with kinds/witness cycles/descriptions, and stats.
/// Shares the violation serializer with the monitor's JSON-lines sink.
std::string reportToJson(const std::string &Path, IsolationLevel Level,
                         const CheckReport &Report, const History &H) {
  std::string Out = "{\"file\":\"";
  appendJsonEscaped(Out, Path);
  Out += "\",\"level\":\"";
  appendJsonEscaped(Out, isolationLevelName(Level));
  Out += "\",\"consistent\":";
  Out += Report.Consistent ? "true" : "false";
  Out += ",\"violations\":[";
  for (size_t I = 0; I < Report.Violations.size(); ++I) {
    if (I)
      Out += ',';
    std::string Desc = Report.Violations[I].describe(H);
    Out += violationToJson(Report.Violations[I], &Desc);
  }
  Out += "],\"stats\":{\"inferred_edges\":" +
         std::to_string(Report.Stats.InferredEdges) +
         ",\"graph_edges\":" + std::to_string(Report.Stats.GraphEdges) +
         ",\"used_fast_path\":";
  Out += Report.Stats.UsedFastPath ? "true" : "false";
  Out += "}}";
  return Out;
}

int cmdCheck(const std::string &Path, const Flags &F) {
  std::optional<IsolationLevel> Level =
      parseIsolationLevel(F.getOr("level", ""));
  if (!Level) {
    std::fprintf(stderr, "error: --level rc|ra|cc is required\n");
    return 2;
  }
  std::string Err;
  std::optional<History> H =
      loadHistory(Path, F.getOr("format", "native"), &Err);
  if (!H) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }

  CheckOptions Options;
  Options.MaxWitnesses =
      static_cast<size_t>(numFlag(F, "witnesses", "16"));
  Options.Threads =
      static_cast<unsigned>(numFlag(F, "threads", "0"));
  CheckReport Report = checkIsolation(*H, *Level, Options);
  if (F.get("json")) {
    std::printf("%s\n", reportToJson(Path, *Level, Report, *H).c_str());
    return Report.Consistent ? 0 : 1;
  }
  if (Report.Consistent) {
    std::printf("consistent: history satisfies %s\n",
                isolationLevelName(*Level));
    return 0;
  }
  std::printf("INCONSISTENT: history violates %s (%zu violation%s)\n",
              isolationLevelName(*Level), Report.Violations.size(),
              Report.Violations.size() == 1 ? "" : "s");
  for (const Violation &V : Report.Violations)
    std::printf("  %s\n", V.describe(*H).c_str());
  return 1;
}

/// Checks many histories (and possibly all levels) concurrently: one pool
/// task per file, each loading once and checking every requested level
/// sequentially. Results print in input order, so output is deterministic
/// regardless of scheduling. Exit code: 2 on any load error, else 1 if any
/// check was inconsistent, else 0.
int cmdBatch(const std::vector<std::string> &Paths, const Flags &F) {
  std::string LevelName = F.getOr("level", "all");
  std::vector<IsolationLevel> Levels;
  if (LevelName == "all") {
    Levels.assign(std::begin(AllIsolationLevels),
                  std::end(AllIsolationLevels));
  } else {
    std::optional<IsolationLevel> Level = parseIsolationLevel(LevelName);
    if (!Level) {
      std::fprintf(stderr, "error: --level rc|ra|cc|all is required\n");
      return 2;
    }
    Levels.push_back(*Level);
  }

  CheckOptions Options;
  Options.MaxWitnesses =
      static_cast<size_t>(numFlag(F, "witnesses", "0"));
  // Concurrency across histories; each individual check stays sequential
  // so the batch scales with the number of files, not inside one file.
  Options.Threads = 1;
  std::string Format = F.getOr("format", "native");

  bool Json = F.get("json") != nullptr;
  struct FileResult {
    std::string Error;
    std::vector<CheckReport> Reports; // parallel to Levels
    std::vector<std::string> JsonLines;
  };
  std::vector<FileResult> Results(Paths.size());

  size_t Jobs = numFlag(F, "jobs", "0");
  ThreadPool Pool(Jobs);
  Pool.parallelFor(0, Paths.size(), 1, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      std::optional<History> H =
          loadHistory(Paths[I], Format, &Results[I].Error);
      if (!H)
        continue;
      for (IsolationLevel Level : Levels) {
        Results[I].Reports.push_back(checkIsolation(*H, Level, Options));
        if (Json)
          Results[I].JsonLines.push_back(reportToJson(
              Paths[I], Level, Results[I].Reports.back(), *H));
      }
    }
  });

  bool AnyError = false, AnyInconsistent = false;
  for (size_t I = 0; I < Paths.size(); ++I) {
    const FileResult &R = Results[I];
    if (!R.Error.empty()) {
      if (Json) {
        std::string Line = "{\"file\":\"";
        appendJsonEscaped(Line, Paths[I]);
        Line += "\",\"error\":\"";
        appendJsonEscaped(Line, R.Error);
        Line += "\"}";
        std::printf("%s\n", Line.c_str());
      } else {
        std::printf("%s: error: %s\n", Paths[I].c_str(), R.Error.c_str());
      }
      AnyError = true;
      continue;
    }
    for (size_t L = 0; L < Levels.size(); ++L) {
      const CheckReport &Report = R.Reports[L];
      if (!Report.Consistent)
        AnyInconsistent = true;
      if (Json) {
        std::printf("%s\n", R.JsonLines[L].c_str());
      } else if (Report.Consistent) {
        std::printf("%s %s: consistent\n", Paths[I].c_str(),
                    isolationLevelName(Levels[L]));
      } else {
        std::printf("%s %s: INCONSISTENT (%zu violation%s)\n",
                    Paths[I].c_str(), isolationLevelName(Levels[L]),
                    Report.Violations.size(),
                    Report.Violations.size() == 1 ? "" : "s");
      }
    }
  }
  return AnyError ? 2 : AnyInconsistent ? 1 : 0;
}

/// Set by the SIGINT handler of `awdit monitor`: stop reading, flush what
/// we have, emit final stats. Installed without SA_RESTART so a blocking
/// stdin read is interrupted instead of resumed.
volatile std::sig_atomic_t MonitorInterrupted = 0;

extern "C" void monitorSigintHandler(int) { MonitorInterrupted = 1; }

/// Compatibility check for `--resume`: an explicitly given flag that
/// contradicts the checkpoint is an error (the snapshot only continues the
/// exact run it was taken from). Diagnostics follow the parse-error style:
/// the offending file, what it holds, what the command line said.
bool resumeFlagConflict(const std::string &CkptFile, const Flags &F,
                        const char *Flag, const std::string &InCheckpoint) {
  const std::string *Given = F.get(Flag);
  if (!Given || *Given == InCheckpoint)
    return false;
  std::fprintf(stderr,
               "error: %s: checkpoint was written with --%s %s, "
               "incompatible with --%s %s\n",
               CkptFile.c_str(), Flag, InCheckpoint.c_str(), Flag,
               Given->c_str());
  return true;
}

/// Tails a history stream (native, plume, or dbcop format) from a file or
/// stdin ("-"), feeding a streaming Monitor that emits violations live —
/// human one-liners or JSON lines — while a window bounds memory if
/// requested. `--threads N` shards the parsing work across cores
/// (io/sharded_ingest.h) with bit-identical output; `--checkpoint DIR`
/// snapshots the full monitor state at flush boundaries so `--resume DIR`
/// can restart mid-stream after a crash. EOF and SIGINT both finalize:
/// trailing violations are flushed to the sink and the final stats line is
/// emitted, so tail mode never drops what it already saw.
int cmdMonitor(const std::string &Path, const Flags &F) {
  std::string Format = F.getOr("format", "native");
  MonitorOptions Options;

  const std::string *ResumeDir = F.get("resume");
  CheckpointMeta ResumeMeta;
  std::string ResumeBlob;
  // `--resume` takes either layout: a v2 segment-store directory (detected
  // by its root log) or a v1 checkpoint.bin directory.
  bool ResumeFromStore =
      ResumeDir && StoreCheckpointer::isStoreDir(*ResumeDir);
  std::unique_ptr<StoreCheckpointer> StoreCkpt;
  if (ResumeDir) {
    std::string CkptFile =
        ResumeFromStore ? *ResumeDir : checkpointFilePath(*ResumeDir);
    std::string Err;
    if (ResumeFromStore) {
      StoreCkpt = std::make_unique<StoreCheckpointer>();
      if (!StoreCkpt->open(*ResumeDir, &Err) ||
          !StoreCkpt->readMeta(ResumeMeta, &Err)) {
        std::fprintf(stderr, "error: %s: %s\n", CkptFile.c_str(),
                     Err.c_str());
        return 2;
      }
    } else {
      if (!readCheckpointFile(*ResumeDir, ResumeBlob, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 2;
      }
      if (!decodeCheckpointMeta(ResumeBlob, ResumeMeta, &Err)) {
        std::fprintf(stderr, "error: %s: %s\n", CkptFile.c_str(),
                     Err.c_str());
        return 2;
      }
    }
    // The snapshot dictates the configuration; explicitly given flags must
    // agree with it or the resumed run would not continue the same check.
    // The level compares as a parsed value, not as text — the display name
    // ("CC") and the flag spelling ("cc") differ in case.
    if (const std::string *GivenLevel = F.get("level")) {
      std::optional<IsolationLevel> Parsed =
          parseIsolationLevel(*GivenLevel);
      if (!Parsed || *Parsed != ResumeMeta.Options.Level) {
        std::fprintf(stderr,
                     "error: %s: checkpoint was written with --level %s, "
                     "incompatible with --level %s\n",
                     CkptFile.c_str(),
                     isolationLevelName(ResumeMeta.Options.Level),
                     GivenLevel->c_str());
        return 2;
      }
    }
    if (resumeFlagConflict(CkptFile, F, "format", ResumeMeta.Format) ||
        resumeFlagConflict(
            CkptFile, F, "interval",
            std::to_string(ResumeMeta.Options.CheckIntervalTxns)) ||
        resumeFlagConflict(CkptFile, F, "window",
                           std::to_string(ResumeMeta.Options.WindowTxns)) ||
        resumeFlagConflict(CkptFile, F, "window-edges",
                           std::to_string(ResumeMeta.Options.WindowEdges)) ||
        resumeFlagConflict(
            CkptFile, F, "window-age",
            std::to_string(ResumeMeta.Options.WindowAgeTicks)) ||
        resumeFlagConflict(
            CkptFile, F, "force-abort",
            std::to_string(ResumeMeta.Options.ForceAbortOpenTicks)) ||
        resumeFlagConflict(
            CkptFile, F, "witnesses",
            std::to_string(ResumeMeta.Options.Check.MaxWitnesses)))
      return 2;
    Options = ResumeMeta.Options;
    Format = ResumeMeta.Format;
  } else {
    std::optional<IsolationLevel> Level =
        parseIsolationLevel(F.getOr("level", ""));
    if (!Level) {
      std::fprintf(stderr, "error: --level rc|ra|cc is required\n");
      return 2;
    }
    Options.Level = *Level;
    Options.Check.MaxWitnesses =
        static_cast<size_t>(numFlag(F, "witnesses", "4"));
    Options.CheckIntervalTxns =
        static_cast<size_t>(numFlag(F, "interval", "256"));
    Options.WindowTxns = static_cast<size_t>(numFlag(F, "window", "0"));
    Options.WindowEdges =
        static_cast<size_t>(numFlag(F, "window-edges", "0"));
    Options.WindowAgeTicks = numFlag(F, "window-age", "0");
    Options.ForceAbortOpenTicks = numFlag(F, "force-abort", "0");
  }

  unsigned Threads = static_cast<unsigned>(numFlag(F, "threads", "0"));
  if (Threads == 0) {
    // Auto: one applier plus enough parsing shards to keep it fed; more
    // than a handful of tokenizers just contend on the deal.
    unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
    Threads = std::min(Hw, 8u);
  }

  const std::string *CkptDir = F.get("checkpoint");
  const std::string *StoreDir = F.get("checkpoint-store");
  if (CkptDir && StoreDir) {
    std::fprintf(stderr, "error: --checkpoint and --checkpoint-store are "
                         "mutually exclusive\n");
    return 2;
  }
  // A resumed run keeps checkpointing into its own directory unless told
  // otherwise — restartability should survive the restart. The layout
  // follows what was resumed.
  if (!CkptDir && !StoreDir) {
    if (ResumeFromStore)
      StoreDir = ResumeDir;
    else
      CkptDir = ResumeDir;
  }
  uint64_t CkptInterval = numFlag(F, "checkpoint-interval", "16");
  if (CkptInterval == 0) {
    std::fprintf(stderr,
                 "error: --checkpoint-interval expects a positive number "
                 "of checking passes, got '%s'\n",
                 F.getOr("checkpoint-interval", "16").c_str());
    return 2;
  }
  uint64_t KillAfter = numFlag(F, "kill-after-flushes", "0");
  uint64_t StatsIntervalSec = numFlag(F, "stats-interval", "0");
  const std::string *TracePath = F.get("trace");
  if (TracePath) {
    // Record the whole run: clear any stale rings, flip the flag before
    // the first byte is read, and name the main thread for the viewer.
    obs::traceClear();
    obs::setTraceThreadName("reader");
    obs::setTraceEnabled(true);
  }

  bool Json = F.get("json") != nullptr;
  JsonLinesSink JsonSink(std::cout);
  CallbackSink TextSink([](const Violation &, const std::string &Desc) {
    std::printf("VIOLATION %s\n", Desc.c_str());
    std::fflush(stdout);
  });
  Monitor M(Options, Json ? static_cast<ViolationSink *>(&JsonSink)
                          : static_cast<ViolationSink *>(&TextSink));

  std::string MachineState;
  if (ResumeDir) {
    std::string Err;
    bool Restored = ResumeFromStore
                        ? StoreCkpt->restore(M, MachineState, &Err)
                        : restoreCheckpoint(ResumeBlob, M, MachineState,
                                            &Err);
    if (!Restored) {
      std::fprintf(stderr, "error: %s: %s\n",
                   ResumeFromStore
                       ? ResumeDir->c_str()
                       : checkpointFilePath(*ResumeDir).c_str(),
                   Err.c_str());
      return 2;
    }
  }
  // The write store: usually the one just restored from, but an explicit
  // --checkpoint-store may point elsewhere (and a store resume may switch
  // to v1 --checkpoint, in which case the handle is no longer needed).
  if (StoreDir) {
    if (!StoreCkpt || !ResumeFromStore || *StoreDir != *ResumeDir) {
      StoreCkpt = std::make_unique<StoreCheckpointer>();
      std::string Err;
      if (!StoreCkpt->open(*StoreDir, &Err)) {
        std::fprintf(stderr, "error: %s: %s\n", StoreDir->c_str(),
                     Err.c_str());
        return 2;
      }
    }
  } else {
    StoreCkpt.reset();
  }

  // Epoch-barrier hook, run on the applier thread after every completed
  // checking pass: write a checkpoint every CkptInterval flushes, then
  // (testing aid) kill the process when asked to rehearse a crash.
  uint64_t LastCkptFlush = ResumeDir ? ResumeMeta.Flushes : 0;
  auto LastStatsPrint = std::chrono::steady_clock::now();
  obs::HistogramSnapshot LastFlushSnap;
  ShardedMonitorIngest::FlushHook Hook;
  if (CkptDir || StoreDir || KillAfter || StatsIntervalSec) {
    Hook = [&, CkptDir, StoreDir, CkptInterval, KillAfter, StatsIntervalSec,
            Format](const IngestFlushPoint &P) mutable {
      // Periodic one-line stats (stderr, at checking-pass boundaries):
      // the same counters the server's /metrics endpoint exports, plus
      // per-interval flush-latency quantiles (the cumulative histogram
      // minus its previous snapshot — fresh numbers every line, not a
      // since-startup average).
      if (StatsIntervalSec) {
        auto Now = std::chrono::steady_clock::now();
        if (Now - LastStatsPrint >=
            std::chrono::seconds(StatsIntervalSec)) {
          LastStatsPrint = Now;
          obs::HistogramSnapshot Snap = P.M.flushLatency().snapshot();
          obs::HistogramSnapshot Delta = Snap;
          Delta.minus(LastFlushSnap);
          LastFlushSnap = std::move(Snap);
          std::fprintf(
              stderr,
              "stats: %s flush_p50_us=%llu flush_p99_us=%llu\n",
              StatsSnapshot::of(P.M.stats()).toLine().c_str(),
              static_cast<unsigned long long>(Delta.percentile(0.50)),
              static_cast<unsigned long long>(Delta.percentile(0.99)));
        }
      }
      if ((CkptDir || StoreDir) &&
          P.Flushes - LastCkptFlush >= CkptInterval) {
        CheckpointMeta Meta;
        Meta.Format = Format;
        Meta.Options = Options;
        Meta.StreamOffset = P.StreamOffset;
        Meta.LineNo = P.LineNo;
        Meta.CommittedTxns = P.CommittedTxns;
        Meta.Flushes = P.Flushes;
        std::string MBlob;
        ByteWriter MW(MBlob);
        P.Machine.saveState(MW);
        std::string Err;
        bool Wrote =
            StoreDir
                ? StoreCkpt->write(P.M, MBlob, Meta, &Err)
                : writeCheckpointFile(*CkptDir,
                                      encodeCheckpoint(P.M, MBlob, Meta),
                                      &Err);
        if (!Wrote)
          std::fprintf(stderr, "warning: checkpoint not written: %s\n",
                       Err.c_str());
        else
          LastCkptFlush = P.Flushes;
      }
      if (KillAfter && P.Flushes >= KillAfter) {
        // Rehearse the crash the checkpoints exist for: no cleanup, no
        // flush, the hard way.
        raise(SIGKILL);
      }
    };
  }

  ShardedMonitorIngest Ingest(M, Format, Threads, std::move(Hook));
  if (!Ingest.valid()) {
    std::fprintf(stderr, "error: unknown format '%s'\n", Format.c_str());
    return 2;
  }
  if (ResumeDir) {
    ByteReader MR(MachineState);
    if (!Ingest.machine().loadState(MR)) {
      std::fprintf(stderr, "error: %s: corrupted checkpoint (parser state)\n",
                   checkpointFilePath(*ResumeDir).c_str());
      return 2;
    }
    Ingest.primeResume(ResumeMeta.StreamOffset, ResumeMeta.LineNo);
  }

  std::FILE *In = Path == "-" ? stdin : std::fopen(Path.c_str(), "rb");
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }

  MonitorInterrupted = 0;
  struct sigaction Action = {};
  struct sigaction OldAction = {};
  Action.sa_handler = monitorSigintHandler;
  sigemptyset(&Action.sa_mask);
  Action.sa_flags = 0; // no SA_RESTART: interrupt the blocking read
  sigaction(SIGINT, &Action, &OldAction);

  // Raw-fd reads, not stdio: read(2) returns whatever a pipe has right
  // now, so a trickling `tail -f` stream reaches the checker (and emits
  // its violations) line by line — fread would block until a full buffer
  // accumulated, stalling live monitoring.
  int Fd = fileno(In);
  char Buffer[1 << 16];
  bool Ok = true;
  if (ResumeDir && ResumeMeta.StreamOffset > 0) {
    // Skip what the checkpoint already applied: seek a real file, read and
    // discard on a pipe.
    if (lseek(Fd, static_cast<off_t>(ResumeMeta.StreamOffset), SEEK_SET) <
        0) {
      uint64_t Left = ResumeMeta.StreamOffset;
      while (Left > 0 && !MonitorInterrupted) {
        size_t Want = std::min<uint64_t>(Left, sizeof(Buffer));
        ssize_t N = read(Fd, Buffer, Want);
        if (N < 0 && errno == EINTR)
          continue; // SIGINT sets the flag; the loop condition sees it
        if (N <= 0)
          break;
        Left -= static_cast<uint64_t>(N);
      }
    }
  }
  // Zero-copy ingest: read(2) lands directly in the pipeline's arena
  // pages, where the shard workers decode in place — no byte is copied
  // after it leaves the kernel.
  while (Ok && !MonitorInterrupted) {
    auto [Dst, Cap] = Ingest.writeWindow(sizeof(Buffer));
    ssize_t N = read(Fd, Dst, Cap);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Ok = Ingest.commitBytes(static_cast<size_t>(N));
  }

  bool ParseError = false;
  if (MonitorInterrupted) {
    Ingest.abortStream();
    ParseError = !Ingest.errorText().empty();
  } else {
    switch (Ingest.finishStream()) {
    case ShardedMonitorIngest::EndState::Clean:
      break;
    case ShardedMonitorIngest::EndState::OpenTxn:
      // A tailed stream can end mid-transaction; finalize() treats the
      // open transaction as aborted instead of dropping the session.
      std::fprintf(stderr,
                   "note: input ended inside an open transaction "
                   "(line %llu); treating it as aborted\n",
                   static_cast<unsigned long long>(Ingest.lineNumber()));
      break;
    case ShardedMonitorIngest::EndState::Error:
      ParseError = true;
      break;
    }
  }
  sigaction(SIGINT, &OldAction, nullptr);
  if (In != stdin)
    std::fclose(In);
  if (ParseError)
    std::fprintf(stderr, "error: %s\n", Ingest.errorText().c_str());
  if (MonitorInterrupted)
    std::fprintf(stderr, "interrupted: finalizing after %llu committed "
                         "transactions\n",
                 static_cast<unsigned long long>(Ingest.committedTxns()));

  // Always finalize: the sink gets every remaining detectable violation
  // and the stats line reflects what was actually checked.
  CheckReport Report = M.finalize();
  const MonitorStats &S = M.stats();
  if (Json) {
    std::printf("%s\n",
                monitorSummaryJson(Report, S, Options.Level).c_str());
  } else {
    std::printf("%s: %s after %llu txns (%llu ops, %llu violations, "
                "%llu checking passes)\n",
                Report.Consistent ? "consistent" : "INCONSISTENT",
                isolationLevelName(Options.Level),
                static_cast<unsigned long long>(S.IngestedTxns),
                static_cast<unsigned long long>(S.IngestedOps),
                static_cast<unsigned long long>(S.ReportedViolations),
                static_cast<unsigned long long>(S.Flushes));
    if (S.EvictedTxns)
      std::printf("window: evicted %llu txns in %llu compactions "
                  "(%llu unresolved + %llu resolved reads crossed the "
                  "horizon, %llu aged out)\n",
                  static_cast<unsigned long long>(S.EvictedTxns),
                  static_cast<unsigned long long>(S.Compactions),
                  static_cast<unsigned long long>(S.EvictedUnresolvedReads),
                  static_cast<unsigned long long>(S.EvictedWriterReads),
                  static_cast<unsigned long long>(S.AgeEvictedTxns));
    if (S.ForcedAborts)
      std::printf("force-abort: %llu hung transactions closed after "
                  "%llu ticks\n",
                  static_cast<unsigned long long>(S.ForcedAborts),
                  static_cast<unsigned long long>(
                      Options.ForceAbortOpenTicks));
  }
  std::fflush(stdout);
  if (TracePath) {
    // After finalize(), so the last flush's spans are in the rings.
    obs::setTraceEnabled(false);
    std::string TraceErr;
    if (!obs::writeTraceFile(*TracePath, &TraceErr))
      std::fprintf(stderr, "warning: trace not written: %s\n",
                   TraceErr.c_str());
  }
  if (ParseError)
    return 2;
  return Report.Consistent ? 0 : 1;
}

/// The active server, for the SIGTERM/SIGINT graceful-drain handler.
/// requestShutdown() is async-signal-safe (an atomic store plus a
/// self-pipe write).
server::Server *ActiveServer = nullptr;

extern "C" void serveSignalHandler(int) {
  if (ActiveServer)
    ActiveServer->requestShutdown();
}

/// Hosts many concurrent monitoring sessions in one process: a TCP line
/// protocol (HELLO/STATS/DETACH/END/SHUTDOWN plus the stream formats), a
/// per-stream Monitor pinned to single-writer pump tasks on a shared
/// thread pool, per-stream checkpoints so a restart resumes every tenant,
/// per-stream JSONL sinks, and a Prometheus-style /metrics endpoint.
int cmdServe(const Flags &F) {
  server::ServerOptions Options;
  Options.Host = F.getOr("host", "127.0.0.1");
  Options.Port = static_cast<uint16_t>(numFlag(F, "port", "4519"));
  if (F.get("metrics-port")) {
    Options.EnableMetrics = true;
    Options.MetricsPort =
        static_cast<uint16_t>(numFlag(F, "metrics-port", "0"));
  }
  Options.CheckpointDir = F.getOr("checkpoint-dir", "");
  if (const std::string *StoreDir = F.get("checkpoint-store-dir")) {
    if (!Options.CheckpointDir.empty()) {
      std::fprintf(stderr, "error: --checkpoint-dir and "
                           "--checkpoint-store-dir are mutually exclusive\n");
      return 2;
    }
    Options.CheckpointDir = *StoreDir;
    Options.CheckpointStore = true;
  }
  Options.SinkDir = F.getOr("sink-dir", "");
  Options.TraceDir = F.getOr("trace-dir", "");
  Options.Threads = static_cast<unsigned>(numFlag(F, "threads", "0"));
  if (F.get("shard-hot-sessions"))
    Options.ShardHotSessions =
        static_cast<int>(numFlag(F, "shard-hot-sessions", "0"));
  if (F.get("hot-bytes-per-sec"))
    Options.HotBytesPerSec = numFlag(F, "hot-bytes-per-sec", "8388608");
  Options.IdleTimeoutSec = numFlag(F, "idle-timeout", "300");
  Options.CheckpointIntervalFlushes =
      numFlag(F, "checkpoint-interval", "16");
  if (Options.CheckpointIntervalFlushes == 0) {
    std::fprintf(stderr,
                 "error: --checkpoint-interval expects a positive number "
                 "of checking passes, got '%s'\n",
                 F.getOr("checkpoint-interval", "16").c_str());
    return 2;
  }
  if (const std::string *Token = F.get("auth-token")) {
    // An empty token would accept every HELLO that types `token=` — the
    // opposite of what the flag promises. Contradictory; refuse.
    if (Token->empty()) {
      std::fprintf(stderr,
                   "error: --auth-token: the token must be non-empty "
                   "(omit the flag to disable authentication)\n");
      return 2;
    }
    Options.AuthToken = *Token;
  }
  auto PositiveBytes = [&](const char *Name, const char *Def,
                           size_t &Out) {
    uint64_t V = numFlag(F, Name, Def);
    if (V == 0) {
      std::fprintf(stderr,
                   "error: --%s expects a positive byte count, got '0' "
                   "(quotas cannot be disabled, only raised)\n",
                   Name);
      return false;
    }
    Out = static_cast<size_t>(V);
    return true;
  };
  if (!PositiveBytes("max-inbox-bytes", "4194304", Options.MaxInboxBytes) ||
      !PositiveBytes("max-outq-bytes", "8388608", Options.MaxOutQueueBytes))
    return 2;
  Options.MaxWindowBytes = numFlag(F, "max-window-bytes", "0");
  if (F.get("sock-sndbuf")) {
    uint64_t Buf = numFlag(F, "sock-sndbuf", "0");
    if (Buf == 0 || Buf > (1u << 30)) {
      std::fprintf(stderr,
                   "error: --sock-sndbuf expects a byte count in "
                   "[1, 2^30], got '%s'\n",
                   F.getOr("sock-sndbuf", "0").c_str());
      return 2;
    }
    Options.SockSndBuf = static_cast<int>(Buf);
  }

  server::Server S(Options);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  // The actual ports (meaningful with --port 0), parseable by scripts.
  std::printf("listening on %s:%u\n", Options.Host.c_str(),
              static_cast<unsigned>(S.port()));
  if (Options.EnableMetrics)
    std::printf("metrics on %s:%u\n", Options.Host.c_str(),
                static_cast<unsigned>(S.metricsPort()));
  std::fflush(stdout);

  ActiveServer = &S;
  struct sigaction Action = {};
  Action.sa_handler = serveSignalHandler;
  sigemptyset(&Action.sa_mask);
  Action.sa_flags = 0;
  struct sigaction OldTerm = {}, OldInt = {};
  sigaction(SIGTERM, &Action, &OldTerm);
  sigaction(SIGINT, &Action, &OldInt);

  S.run();

  sigaction(SIGTERM, &OldTerm, nullptr);
  sigaction(SIGINT, &OldInt, nullptr);
  ActiveServer = nullptr;
  std::printf("drained\n");
  return 0;
}

int cmdStats(const std::string &Path, const Flags &F) {
  std::string Err;
  std::optional<History> H =
      loadHistory(Path, F.getOr("format", "native"), &Err);
  if (!H) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  std::printf("%s\n", computeStats(*H).toString().c_str());
  return 0;
}

int cmdGenerate(const Flags &F) {
  GenerateParams P;
  std::optional<Benchmark> Bench = parseBenchmark(F.getOr("bench", ""));
  if (!Bench) {
    std::fprintf(stderr, "error: --bench is required\n");
    return 2;
  }
  P.Bench = *Bench;
  P.Sessions = numFlag(F, "sessions", "50");
  P.Txns = numFlag(F, "txns", "1000");
  P.Seed = numFlag(F, "seed", "1");
  P.AbortProbability = floatFlag(F, "abort-prob", "0");
  std::string ModeName = F.getOr("mode", "causal");
  if (ModeName == "serializable")
    P.Mode = ConsistencyMode::Serializable;
  else if (ModeName == "causal")
    P.Mode = ConsistencyMode::Causal;
  else if (ModeName == "read-atomic")
    P.Mode = ConsistencyMode::ReadAtomic;
  else if (ModeName == "read-committed")
    P.Mode = ConsistencyMode::ReadCommitted;
  else {
    std::fprintf(stderr, "error: unknown mode '%s'\n", ModeName.c_str());
    return 2;
  }
  const std::string *OutPath = F.get("out");
  if (!OutPath) {
    std::fprintf(stderr, "error: --out is required\n");
    return 2;
  }

  History H = generateHistory(P);
  if (const std::string *Inject = F.get("inject")) {
    std::optional<AnomalyKind> Kind = parseAnomaly(*Inject);
    if (!Kind) {
      std::fprintf(stderr, "error: unknown anomaly '%s'\n", Inject->c_str());
      return 2;
    }
    std::string Err;
    std::optional<History> Mutated = injectAnomaly(H, *Kind, P.Seed, &Err);
    if (!Mutated) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    H = std::move(*Mutated);
  }

  std::string Err;
  if (!saveHistory(H, *OutPath, F.getOr("format", "native"), &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  std::printf("wrote %s (%s)\n", OutPath->c_str(),
              computeStats(H).toString().c_str());
  return 0;
}

int cmdReduce(const Flags &F) {
  size_t Nodes = numFlag(F, "nodes", "16");
  double EdgeProb = floatFlag(F, "edge-prob", "0.2");
  uint64_t Seed = numFlag(F, "seed", "1");
  std::string Variant = F.getOr("variant", "general");
  const std::string *OutPath = F.get("out");
  if (!OutPath) {
    std::fprintf(stderr, "error: --out is required\n");
    return 2;
  }

  if (Variant != "general" && Variant != "ra2" && Variant != "rc1") {
    std::fprintf(stderr, "error: unknown variant '%s'\n", Variant.c_str());
    return 2;
  }
  Rng Rand(Seed);
  UGraph G = randomGraph(Nodes, EdgeProb, Rand);
  History H = Variant == "ra2"   ? reduceRaTwoSessions(G)
              : Variant == "rc1" ? reduceRcSingleSession(G)
                                 : reduceGeneral(G);

  std::string Err;
  if (!saveHistory(H, *OutPath, F.getOr("format", "native"), &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  std::printf("wrote %s: graph n=%zu m=%zu -> %s\n", OutPath->c_str(),
              G.numNodes(), G.numEdges(),
              computeStats(H).toString().c_str());
  return 0;
}

int cmdShrink(const std::string &Path, const Flags &F) {
  std::optional<IsolationLevel> Level =
      parseIsolationLevel(F.getOr("level", ""));
  if (!Level) {
    std::fprintf(stderr, "error: --level rc|ra|cc is required\n");
    return 2;
  }
  const std::string *OutPath = F.get("out");
  if (!OutPath) {
    std::fprintf(stderr, "error: --out is required\n");
    return 2;
  }
  std::string Err;
  std::optional<History> H =
      loadHistory(Path, F.getOr("format", "native"), &Err);
  if (!H) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  if (checkIsolation(*H, *Level).Consistent) {
    std::fprintf(stderr,
                 "error: history already satisfies %s; nothing to shrink\n",
                 isolationLevelName(*Level));
    return 2;
  }

  ShrinkOptions Options;
  Options.MaxChecks =
      static_cast<size_t>(numFlag(F, "max-checks", "2000"));
  ShrinkResult R = shrinkViolation(*H, *Level, Options);
  if (!saveHistory(R.Shrunk, *OutPath, F.getOr("format", "native"), &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  std::printf("shrunk %zu -> %zu txns (%zu checks); wrote %s\n",
              R.TxnsBefore, R.TxnsAfter, R.ChecksUsed, OutPath->c_str());
  CheckReport Report = checkIsolation(R.Shrunk, *Level);
  for (const Violation &V : Report.Violations)
    std::printf("  %s\n", V.describe(R.Shrunk).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];

  // Collect positionals and --flag value pairs (--json is valueless). Only
  // batch takes more than one positional.
  Flags F;
  std::vector<std::string> Positionals;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) == 0) {
      if (Arg == "--json") {
        F.Values["json"] = "1";
        continue;
      }
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag %s needs a value\n", Arg.c_str());
        return 2;
      }
      F.Values[Arg.substr(2)] = Argv[++I];
    } else {
      Positionals.push_back(Arg);
    }
  }
  if (Positionals.size() > 1 && Cmd != "batch")
    return usage();

  if (Cmd == "check" && Positionals.size() == 1)
    return cmdCheck(Positionals[0], F);
  if (Cmd == "batch" && !Positionals.empty())
    return cmdBatch(Positionals, F);
  if (Cmd == "monitor" && Positionals.size() <= 1)
    return cmdMonitor(Positionals.empty() ? "-" : Positionals[0], F);
  if (Cmd == "serve" && Positionals.empty())
    return cmdServe(F);
  if (Cmd == "stats" && Positionals.size() == 1)
    return cmdStats(Positionals[0], F);
  if (Cmd == "generate")
    return cmdGenerate(F);
  if (Cmd == "reduce")
    return cmdReduce(F);
  if (Cmd == "shrink" && Positionals.size() == 1)
    return cmdShrink(Positionals[0], F);
  return usage();
}
