//===- tools/awdit-store.cpp - Checkpoint-store inspector -------------------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline inspector for awdit's copy-on-write checkpoint stores
/// (store/segment_store.h):
///
/// \code
///   awdit-store fsck <dir>    # verify every chunk of every root
///   awdit-store stats <dir>   # space accounting and the current root
/// \endcode
///
/// `fsck` exits 0 only when every root record in the log is fully
/// readable: each referenced chunk present in its segment with matching
/// id, size, and checksum, and no two live chunks of a root overlapping.
/// A torn tail on the root log (a crash mid-commit) is reported but is
/// not an error — recovery truncates it and resumes from the last
/// published root, which is exactly what fsck verified. `stats` prints
/// the per-segment live/dead byte ledger the background compactor works
/// from, plus the checkpoint meta of the current root.
///
//===----------------------------------------------------------------------===//

#include "checker/checkpoint.h"
#include "checker/checkpoint_chunks.h"
#include "store/segment_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

using namespace awdit;

namespace {

/// Human name of a v2 chunk-section kind (checker/checkpoint_chunks.h).
/// Stores written by other producers may use kinds we do not know.
const char *chunkKindName(uint64_t Kind) {
  switch (static_cast<ckchunk::Kind>(Kind)) {
  case ckchunk::MTxns:
    return "monitor/txns";
  case ckchunk::MSess:
    return "monitor/sessions";
  case ckchunk::MMisc:
    return "monitor/misc";
  case ckchunk::MMeta:
    return "monitor/txn-meta";
  case ckchunk::SHdr:
    return "saturation/header";
  case ckchunk::SPos:
    return "saturation/topo-pos";
  case ckchunk::SOut:
    return "saturation/topo-out";
  case ckchunk::SIn:
    return "saturation/topo-in";
  case ckchunk::SEdges:
    return "saturation/edges";
  case ckchunk::SSources:
    return "saturation/source-edges";
  case ckchunk::SQuar:
    return "saturation/quarantine";
  case ckchunk::SProc:
    return "saturation/processed";
  case ckchunk::SReaders:
    return "saturation/readers";
  case ckchunk::SHb:
    return "saturation/hb-rows";
  case ckchunk::SWriters:
    return "saturation/writer-index";
  case ckchunk::SRa:
    return "saturation/ra-state";
  case ckchunk::MAdopted:
    return "monitor/adopted";
  case ckchunk::MWrites:
    return "monitor/write-sites";
  case ckchunk::MPending:
    return "monitor/pending-reads";
  case ckchunk::MWaiters:
    return "monitor/close-waiters";
  case ckchunk::MMask:
    return "monitor/evicted-mask";
  case ckchunk::MDirty:
    return "monitor/dirty";
  case ckchunk::MOpen:
    return "monitor/open-txns";
  case ckchunk::MForced:
    return "monitor/forced-aborts";
  case ckchunk::MSoBase:
    return "monitor/so-base";
  case ckchunk::MFp:
    return "monitor/fingerprints";
  case ckchunk::MCyc:
    return "monitor/cycle-txns";
  case ckchunk::MRep:
    return "monitor/reported";
  case ckchunk::MTail:
    return "monitor/tail";
  }
  return "unknown";
}

int usage() {
  std::fprintf(stderr, "usage:\n"
                       "  awdit-store fsck <dir>   # verify every chunk of"
                       " every root record\n"
                       "  awdit-store stats <dir>  # segment space ledger"
                       " and current root\n");
  return 2;
}

int cmdFsck(const std::string &Dir) {
  store::FsckReport Report;
  std::string Err;
  if (!store::SegmentStore::fsck(Dir, Report, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  std::printf("roots checked:   %" PRIu64 "\n", Report.Roots);
  std::printf("chunks checked:  %" PRIu64 "\n", Report.ChunksChecked);
  std::printf("segment files:   %" PRIu64 " (%" PRIu64 " stray)\n",
              Report.SegmentFiles, Report.StraySegmentFiles);
  if (Report.TornTail)
    std::printf("torn tail:       yes (unpublished commit; recovery "
                "truncates it)\n");
  for (const std::string &E : Report.Errors)
    std::printf("ERROR: %s\n", E.c_str());
  std::printf("%s\n", Report.clean() ? "clean" : "CORRUPT");
  return Report.clean() ? 0 : 1;
}

int cmdStats(const std::string &Dir) {
  std::string Err;
  if (!store::SegmentStore::isStoreDir(Dir)) {
    std::fprintf(stderr, "error: '%s' is not a checkpoint store "
                         "directory (no root log)\n",
                 Dir.c_str());
    return 2;
  }
  store::SegmentStore S;
  if (!S.openReadOnly(Dir, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  store::StoreStats St = S.stats();
  std::printf("root seq:        %" PRIu64 " (%" PRIu64 " records, %" PRIu64
              " log bytes)\n",
              St.LastRootSeq, St.RootRecords, St.RootLogBytes);
  std::printf("live chunks:     %" PRIu64 " (%" PRIu64 " bytes)\n",
              St.LiveChunks, St.LiveBytes);
  std::printf("dead bytes:      %" PRIu64 "\n", St.DeadBytes);
  std::printf("segments:        %" PRIu64 "\n", St.Segments);
  for (const store::SegmentInfo &Seg : St.PerSegment)
    std::printf("  seg-%06u  %8" PRIu64 " bytes, %6" PRIu64
                " live chunks, %8" PRIu64 " live bytes%s\n",
                Seg.Id, Seg.EndBytes, Seg.LiveChunks, Seg.LiveBytes,
                Seg.Open ? "  (open)" : "");

  // What the live bytes are made of: chunk count and payload bytes per
  // section kind (the id's top byte), largest first. This is the answer
  // to "why is my checkpoint this big" — e.g. a graph-heavy workload
  // shows up as saturation/edges dominating.
  struct KindAgg {
    uint64_t Chunks = 0;
    uint64_t Bytes = 0;
  };
  std::map<uint64_t, KindAgg> ByKind;
  for (const auto &[Id, Size] : S.chunkEntries()) {
    KindAgg &A = ByKind[Id >> 56];
    ++A.Chunks;
    A.Bytes += Size;
  }
  if (!ByKind.empty()) {
    std::vector<std::pair<uint64_t, KindAgg>> Order(ByKind.begin(),
                                                    ByKind.end());
    std::sort(Order.begin(), Order.end(),
              [](const auto &A, const auto &B) {
                return A.second.Bytes > B.second.Bytes;
              });
    std::printf("chunk kinds:\n");
    for (const auto &[Kind, A] : Order)
      std::printf("  %-24s %6" PRIu64 " chunks, %10" PRIu64 " bytes\n",
                  chunkKindName(Kind), A.Chunks, A.Bytes);
  }

  // The checkpoint riding on the root, when the root is one of ours.
  if (S.hasRoot()) {
    CheckpointMeta Meta;
    if (decodeStoreCheckpointMeta(S.rootMeta(), Meta, &Err))
      std::printf("checkpoint:      format=%s offset=%" PRIu64
                  " line=%" PRIu64 " flushes=%" PRIu64 "\n",
                  Meta.Format.c_str(), Meta.StreamOffset, Meta.LineNo,
                  Meta.Flushes);
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 3)
    return usage();
  std::string Cmd = Argv[1];
  std::string Dir = Argv[2];
  if (Cmd == "fsck")
    return cmdFsck(Dir);
  if (Cmd == "stats")
    return cmdStats(Dir);
  return usage();
}
