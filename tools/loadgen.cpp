//===- tools/loadgen.cpp - Concurrent load generator for awdit serve -------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays N history files as N concurrent stream sessions against an
/// `awdit serve` instance — the client half of the server integration
/// smoke (CI) and of the fan-out bench. One thread per stream: HELLO,
/// seek to the offset the server reports (so a drained-and-restarted
/// server resumes mid-stream), feed the file in chunks, END, and record
/// everything the server pushes — VIOLATION lines to
/// `<out-dir>/<name>.client.jsonl`, the FINAL summary to
/// `<out-dir>/<name>.final.json`.
///
/// \code
///   awdit-loadgen --port P [--host H] [--out-dir DIR]
///       [--chunk-bytes N] [--throttle-ms N] [--rate MBPS] [--reconnect]
///       [--retry-sec S] [--token SECRET] [--mux]
///       [--probe-interval-ms N] [--latency-out FILE]
///       --stream NAME=FILE[:level=cc][:interval=N][:window=N]
///                [:window-edges=N][:window-age=T][:force-abort=T]
///                [:witnesses=N][:format=native|plume|dbcop]
///                [:window-bytes=N][:inbox-bytes=N][:outq-bytes=N]
///                [:stall-ms=N][:drop-every-bytes=N][:expect-quota=1] ...
/// \endcode
///
/// With --reconnect a connection that drops mid-stream (a SIGTERM-drained
/// server, a restart) is retried until --retry-sec runs out; the re-HELLO
/// returns the resumed byte offset and the replay continues from there —
/// the client-side half of the server's crash-recovery story.
///
/// Soak-scenario knobs (the CI server-soak job drives all of them):
///
///  - `:stall-ms=N` — the stream's reader thread goes to sleep for N ms
///    right after the handshake while the sender keeps feeding: a stalled
///    consumer. The server must keep serving every other tenant (its
///    replies queue in the per-connection output buffer, not in a
///    blocked write(2)).
///  - `:drop-every-bytes=N` — the sender hard-closes the connection after
///    every N payload bytes and (with --reconnect) re-HELLOs, resuming at
///    the server's reported offset: a reconnect storm.
///  - `:expect-quota=1` — the stream is *expected* to be refused or
///    wedged with a typed `ERR quota ...`; seeing one is success,
///    finishing without one is an error.
///  - `--mux` — all streams share ONE connection using mux framing
///    (`@<stream> <line>`, escaping handled here): the fan-in proxy
///    pattern. Reconnect, `stall-ms` and `drop-every-bytes` are not
///    supported in this mode (`expect-quota` is).
///  - `--token SECRET` — sent as `token=` on every HELLO (--auth-token
///    servers).
///
/// --rate MBPS paces each sender to at most MBPS megabytes (1e6 bytes)
/// per second — a token-bucket over the whole replay, so short bursts at
/// chunk granularity average out to the requested wire rate. After all
/// streams finish, a `throughput:` line reports aggregate bytes/sec and
/// lines/sec as observed by the senders — the client-side counterpart of
/// the BM_IngestBytesPerSec bench counter.
///
/// Client-observed latency: every HELLO→OK handshake is timed, and (in
/// per-connection mode) each sender injects a `STATS` probe between
/// chunks every --probe-interval-ms (default 250; 0 disables probing).
/// A probe's round-trip spans the server's whole reply path — event loop,
/// session pump behind whatever data is already queued, output queue —
/// so its quantiles are the end-to-end responsiveness a real dashboard
/// client would see while the pipeline is loaded. A `latency:` summary
/// line reports p50/p95/p99/max across all samples, and --latency-out
/// writes them as JSON for the soak CI's latency gate.
///
/// Exit code: 2 on any protocol/IO error, else 1 if any stream was
/// inconsistent, else 0.
///
//===----------------------------------------------------------------------===//

#include "support/socket.h"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace awdit;

namespace {

struct StreamSpec {
  std::string Name;
  std::string File;
  std::string Level = "cc";
  /// Raw k=v options forwarded into the HELLO line.
  std::vector<std::string> Options;
  /// Soak knobs (consumed here, never forwarded).
  uint64_t StallMs = 0;
  uint64_t DropEveryBytes = 0;
  bool ExpectQuota = false;
};

struct Config {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  std::string OutDir = ".";
  size_t ChunkBytes = 64 << 10;
  uint64_t ThrottleMs = 0;
  double RateMBps = 0; // 0 = unthrottled
  bool Reconnect = false;
  uint64_t RetrySec = 30;
  bool Mux = false;
  std::string Token;
  /// STATS round-trip probe cadence per sender (ms; 0 disables).
  uint64_t ProbeIntervalMs = 250;
  /// Where the latency summary JSON goes; empty = stdout line only.
  std::string LatencyOut;
  std::vector<StreamSpec> Streams;
};

std::string helloLine(const Config &Cfg, const StreamSpec &Spec, bool Mux) {
  std::string Hello = "HELLO " + Spec.Name + " " + Spec.Level;
  for (const std::string &Opt : Spec.Options)
    Hello += " " + Opt;
  if (Mux)
    Hello += " mux=on";
  if (!Cfg.Token.empty())
    Hello += " token=" + Cfg.Token;
  Hello += "\n";
  return Hello;
}

/// Buffered line reading over a blocking socket.
class LineReader {
public:
  explicit LineReader(const Socket &S) : S(S) {}

  /// False on EOF or error.
  bool next(std::string &Line) {
    for (;;) {
      size_t Nl = Buf.find('\n', Scan);
      if (Nl != std::string::npos) {
        Line = Buf.substr(0, Nl);
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        Buf.erase(0, Nl + 1);
        Scan = 0;
        return true;
      }
      Scan = Buf.size();
      char Tmp[4096];
      long N = S.readSome(Tmp, sizeof(Tmp));
      if (N <= 0)
        return false;
      Buf.append(Tmp, static_cast<size_t>(N));
    }
  }

private:
  const Socket &S;
  std::string Buf;
  size_t Scan = 0;
};

struct StreamResult {
  bool Error = false;
  std::string ErrorText;
  bool GotFinal = false;
  bool Consistent = true;
  /// A typed `ERR quota ...` reply was seen (success for :expect-quota=1
  /// streams, an error for everyone else).
  bool QuotaErr = false;
  uint64_t Violations = 0;
  uint64_t Reconnects = 0;
  uint64_t SentBytes = 0;
  uint64_t SentLines = 0;
  /// Client-observed round trips, microseconds: the HELLO→OK handshake
  /// plus every answered STATS probe (recorded by this stream's reader
  /// thread only).
  std::vector<uint64_t> LatencyMicros;
};

/// A transient attach failure that --reconnect should retry: right after a
/// hard drop the server may not have reaped the dead connection yet, so
/// the re-HELLO can race an "already attached" / eviction window.
bool isRetryableHelloErr(std::string_view Line) {
  return Line.find("already has an attached client") != std::string::npos ||
         Line.find("is being evicted") != std::string::npos;
}

/// One complete attach cycle: HELLO, feed from the reported offset, END,
/// read until FINAL/BYE or disconnect. Returns false when the connection
/// dropped before FINAL (caller may reconnect).
bool runOnce(const Config &Cfg, const StreamSpec &Spec,
             const std::string &Text, StreamResult &R,
             std::ofstream &Jsonl) {
  std::string Err;
  Socket S = tcpConnect(Cfg.Host, Cfg.Port, &Err);
  if (!S.valid()) {
    R.ErrorText = Err;
    return false;
  }
  LineReader Reader(S);

  auto HelloT0 = std::chrono::steady_clock::now();
  if (!S.writeAll(helloLine(Cfg, Spec, /*Mux=*/false))) {
    R.ErrorText = "write failed during HELLO";
    return false;
  }
  std::string Line;
  if (!Reader.next(Line)) {
    R.ErrorText = "connection closed before HELLO reply";
    return false;
  }
  R.LatencyMicros.push_back(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - HelloT0)
          .count()));
  if (Line.rfind("ERR", 0) == 0) {
    if (Spec.ExpectQuota && Line.rfind("ERR quota", 0) == 0) {
      // The refusal this stream exists to provoke.
      R.QuotaErr = true;
      return true;
    }
    R.ErrorText = Line;
    if (Cfg.Reconnect && isRetryableHelloErr(Line))
      return false;
    R.Error = true;
    return true;
  }
  // "OK <stream> <status> offset=<N> line=<M>"
  uint64_t Offset = 0;
  {
    size_t Pos = Line.find("offset=");
    if (Pos != std::string::npos)
      Offset = std::strtoull(Line.c_str() + Pos + 7, nullptr, 10);
  }
  if (Offset > Text.size()) {
    R.ErrorText = "server offset " + std::to_string(Offset) +
                  " beyond input size " + std::to_string(Text.size());
    R.Error = true;
    return true; // not retryable
  }

  // Feed the rest of the file; the reader thread concurrently drains
  // pushed VIOLATION lines so neither side's socket buffer can deadlock.
  // STATS probes ride between chunks: the session pump answers them in
  // order behind whatever data is already queued, so the probe's round
  // trip is the client-observed end-to-end latency under this load. The
  // timestamp queue pairs each reply with its send (replies come back in
  // probe order on one connection).
  std::mutex ProbeMu;
  std::deque<std::chrono::steady_clock::time_point> ProbeSent;
  std::atomic<bool> SenderFailed{false};
  std::atomic<bool> SenderDropped{false};
  std::thread Sender([&] {
    auto Start = std::chrono::steady_clock::now();
    auto LastProbe = Start;
    uint64_t Sent = 0;
    for (size_t Pos = Offset; Pos < Text.size();) {
      // Cut the chunk at the last newline inside the window so a probe
      // injected after it lands between data lines, never mid-line (a
      // spliced "<partial>STATS" would corrupt the stream). A single line
      // longer than ChunkBytes is sent as a raw slice — no boundary, so
      // no probe rides behind it.
      size_t Limit = std::min(Text.size(), Pos + Cfg.ChunkBytes);
      size_t End = Limit;
      if (Limit < Text.size()) {
        size_t NL = Text.rfind('\n', Limit - 1);
        if (NL != std::string::npos && NL >= Pos)
          End = NL + 1;
      }
      std::string_view Chunk =
          std::string_view(Text).substr(Pos, End - Pos);
      Pos = End;
      if (!S.writeAll(Chunk)) {
        SenderFailed.store(true);
        return;
      }
      Sent += Chunk.size();
      R.SentBytes += Chunk.size();
      R.SentLines += static_cast<uint64_t>(
          std::count(Chunk.begin(), Chunk.end(), '\n'));
      if (Cfg.ProbeIntervalMs && !Chunk.empty() && Chunk.back() == '\n') {
        auto Now = std::chrono::steady_clock::now();
        if (Now - LastProbe >=
            std::chrono::milliseconds(Cfg.ProbeIntervalMs)) {
          LastProbe = Now;
          {
            std::lock_guard<std::mutex> Lock(ProbeMu);
            ProbeSent.push_back(Now);
          }
          if (!S.writeAll("STATS\n")) {
            SenderFailed.store(true);
            return;
          }
        }
      }
      if (Spec.DropEveryBytes && Sent >= Spec.DropEveryBytes) {
        // Reconnect-storm mode: yank the connection out from under both
        // halves. The next attach resumes at the server's offset.
        SenderDropped.store(true);
        ::shutdown(S.fd(), SHUT_RDWR);
        return;
      }
      if (Cfg.RateMBps > 0) {
        // Token bucket over the whole replay: sleep until the bytes sent
        // so far would have taken this long at the requested rate.
        auto Due = Start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   static_cast<double>(Sent) /
                                   (Cfg.RateMBps * 1e6)));
        std::this_thread::sleep_until(Due);
      }
      if (Cfg.ThrottleMs)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(Cfg.ThrottleMs));
    }
    if (!S.writeAll("END\n"))
      SenderFailed.store(true);
  });

  // Stalled-consumer mode: the sender keeps pushing while this reader
  // plays dead, so any violation pushes pile up in the server's output
  // queue for this connection (and only this connection).
  if (Spec.StallMs)
    std::this_thread::sleep_for(std::chrono::milliseconds(Spec.StallMs));

  bool SawBye = false;
  bool Draining = false;
  while (Reader.next(Line)) {
    if (Line.rfind("DRAINING ", 0) == 0) {
      // The server is checkpointing and shutting down mid-stream. What
      // follows (a courtesy FINAL, BYE) is not stream completion, and
      // its end-of-stream extrapolations are not part of the
      // exactly-once record — the resumed session re-reports anything
      // still detectable.
      Draining = true;
    } else if (Line.rfind("VIOLATION ", 0) == 0) {
      if (!Draining) {
        Jsonl << Line.substr(10) << "\n";
        Jsonl.flush();
        ++R.Violations;
      }
    } else if (Line.rfind("FINAL ", 0) == 0) {
      if (!Draining) {
        R.GotFinal = true;
        R.Consistent =
            Line.find("\"consistent\":true") != std::string::npos;
        std::ofstream Final(Cfg.OutDir + "/" + Spec.Name + ".final.json");
        Final << Line.substr(6) << "\n";
      }
    } else if (Line == "BYE") {
      SawBye = true;
      break;
    } else if (Line.rfind("STATS ", 0) == 0) {
      // A probe came home; its partner timestamp is the queue front.
      std::chrono::steady_clock::time_point T0;
      bool Have = false;
      {
        std::lock_guard<std::mutex> Lock(ProbeMu);
        if (!ProbeSent.empty()) {
          T0 = ProbeSent.front();
          ProbeSent.pop_front();
          Have = true;
        }
      }
      if (Have)
        R.LatencyMicros.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - T0)
                .count()));
    } else if (Line.rfind("ERR", 0) == 0) {
      if (Spec.ExpectQuota && Line.rfind("ERR quota", 0) == 0) {
        // Expected mid-stream trip (e.g. window-bytes exceeded). The
        // server wedges the session; keep reading — the END still yields
        // a courtesy FINAL/BYE.
        R.QuotaErr = true;
      } else {
        R.Error = true;
        R.ErrorText = Line;
      }
    }
    // OK lines are informational here.
  }
  S.shutdownWrite();
  Sender.join();
  if (R.Error)
    return true; // a protocol error is not retryable
  if (Spec.ExpectQuota && R.QuotaErr)
    return true; // got the refusal we came for
  if (!R.GotFinal || !SawBye || SenderFailed.load() ||
      SenderDropped.load()) {
    if (R.ErrorText.empty())
      R.ErrorText = "connection dropped before FINAL";
    return false; // retryable: the server may have drained
  }
  return true;
}

void runStream(const Config &Cfg, const StreamSpec &Spec, StreamResult &R) {
  std::ifstream In(Spec.File, std::ios::binary);
  if (!In) {
    R.Error = true;
    R.ErrorText = "cannot open '" + Spec.File + "'";
    return;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  std::ofstream Jsonl(Cfg.OutDir + "/" + Spec.Name + ".client.jsonl",
                      std::ios::app);

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(Cfg.RetrySec);
  for (;;) {
    if (runOnce(Cfg, Spec, Text, R, Jsonl))
      return;
    if (!Cfg.Reconnect || std::chrono::steady_clock::now() >= Deadline) {
      R.Error = true;
      if (R.ErrorText.empty())
        R.ErrorText = "stream did not complete";
      return;
    }
    ++R.Reconnects;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

/// Frames one chunk (whole lines, trailing newline) for mux transport:
/// an `@<stream>` switch, then every payload line with a leading '@'
/// escaped to '@@' (see server/protocol.h).
std::string frameMuxChunk(const std::string &Stream, std::string_view Chunk) {
  std::string Out;
  Out.reserve(Chunk.size() + Stream.size() + 2);
  Out += "@" + Stream + "\n";
  size_t Pos = 0;
  while (Pos < Chunk.size()) {
    size_t Nl = Chunk.find('\n', Pos);
    size_t End = Nl == std::string_view::npos ? Chunk.size() : Nl;
    if (End > Pos && Chunk[Pos] == '@')
      Out += '@';
    Out.append(Chunk.data() + Pos, End - Pos);
    Out += '\n';
    Pos = End + 1;
  }
  return Out;
}

/// All streams over ONE connection with mux framing: sequential tagged
/// HELLOs, a sender that round-robins line-aligned chunks between the
/// streams (`@<stream>` switches, escaped payloads, `@<stream> END`), and
/// a reader that demuxes the tagged replies. No reconnect in this mode.
void runMuxAll(const Config &Cfg, std::vector<StreamResult> &Results) {
  size_t N = Cfg.Streams.size();
  auto FailAll = [&](const std::string &Text) {
    for (StreamResult &R : Results)
      if (!R.Error && !R.GotFinal) {
        R.Error = true;
        R.ErrorText = Text;
      }
  };

  struct MuxStream {
    std::string Text;   // file contents
    size_t Pos = 0;     // next unsent byte
    bool SendDone = false;
    bool Done = false;  // saw BYE (or terminal ERR)
    std::ofstream Jsonl;
    bool Draining = false;
  };
  std::vector<MuxStream> St(N);
  for (size_t I = 0; I < N; ++I) {
    std::ifstream In(Cfg.Streams[I].File, std::ios::binary);
    if (!In) {
      Results[I].Error = true;
      Results[I].ErrorText = "cannot open '" + Cfg.Streams[I].File + "'";
      St[I].Done = St[I].SendDone = true;
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    St[I].Text = Buf.str();
    St[I].Jsonl.open(Cfg.OutDir + "/" + Cfg.Streams[I].Name +
                         ".client.jsonl",
                     std::ios::app);
  }

  std::string Err;
  Socket S = tcpConnect(Cfg.Host, Cfg.Port, &Err);
  if (!S.valid()) {
    FailAll(Err);
    return;
  }
  LineReader Reader(S);

  // Sequential handshakes: no data is in flight yet, so the next tagged
  // reply on the wire is this stream's OK/ERR.
  std::string Line;
  for (size_t I = 0; I < N; ++I) {
    if (St[I].Done)
      continue;
    const StreamSpec &Spec = Cfg.Streams[I];
    auto HelloT0 = std::chrono::steady_clock::now();
    if (!S.writeAll(helloLine(Cfg, Spec, /*Mux=*/true))) {
      FailAll("write failed during HELLO");
      return;
    }
    if (!Reader.next(Line)) {
      FailAll("connection closed before HELLO reply");
      return;
    }
    Results[I].LatencyMicros.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - HelloT0)
            .count()));
    std::string Tag = "@" + Spec.Name + " ";
    std::string Reply =
        Line.rfind(Tag, 0) == 0 ? Line.substr(Tag.size()) : Line;
    if (Reply.rfind("ERR", 0) == 0) {
      if (Spec.ExpectQuota && Reply.rfind("ERR quota", 0) == 0)
        Results[I].QuotaErr = true;
      else {
        Results[I].Error = true;
        Results[I].ErrorText = Reply;
      }
      St[I].Done = St[I].SendDone = true;
      continue;
    }
    size_t OffPos = Reply.find("offset=");
    if (OffPos != std::string::npos)
      St[I].Pos = std::min<size_t>(
          std::strtoull(Reply.c_str() + OffPos + 7, nullptr, 10),
          St[I].Text.size());
  }

  std::atomic<bool> SenderFailed{false};
  std::thread Sender([&] {
    auto Start = std::chrono::steady_clock::now();
    uint64_t Sent = 0;
    for (;;) {
      bool Busy = false;
      for (size_t I = 0; I < N; ++I) {
        MuxStream &M = St[I];
        if (M.SendDone)
          continue;
        Busy = true;
        const std::string &Name = Cfg.Streams[I].Name;
        std::string Frame;
        if (M.Pos >= M.Text.size()) {
          Frame = "@" + Name + " END\n";
          M.SendDone = true;
        } else {
          // Cut at a line boundary so the next stream's switch frame
          // cannot land mid-line.
          size_t Want = std::min(M.Pos + Cfg.ChunkBytes, M.Text.size());
          size_t End = M.Text.rfind('\n', Want - 1);
          if (End == std::string::npos || End < M.Pos)
            End = M.Text.find('\n', Want);
          if (End == std::string::npos)
            End = M.Text.size() - 1;
          std::string_view Chunk =
              std::string_view(M.Text).substr(M.Pos, End + 1 - M.Pos);
          Frame = frameMuxChunk(Name, Chunk);
          M.Pos = End + 1;
          Results[I].SentBytes += Chunk.size();
          Results[I].SentLines += static_cast<uint64_t>(
              std::count(Chunk.begin(), Chunk.end(), '\n'));
          Sent += Chunk.size();
        }
        if (!S.writeAll(Frame)) {
          SenderFailed.store(true);
          return;
        }
        if (Cfg.RateMBps > 0) {
          auto Due = Start + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(
                                     static_cast<double>(Sent) /
                                     (Cfg.RateMBps * 1e6)));
          std::this_thread::sleep_until(Due);
        }
        if (Cfg.ThrottleMs)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Cfg.ThrottleMs));
      }
      if (!Busy)
        return;
    }
  });

  // Demux the tagged replies until every live stream said BYE.
  size_t Open = 0;
  for (const MuxStream &M : St)
    if (!M.Done)
      ++Open;
  while (Open > 0 && Reader.next(Line)) {
    if (Line.empty() || Line[0] != '@')
      continue; // connection-level chatter (e.g. `ERR mux: ...`)
    size_t Sp = Line.find(' ');
    if (Sp == std::string::npos)
      continue;
    std::string Name = Line.substr(1, Sp - 1);
    std::string_view Rest = std::string_view(Line).substr(Sp + 1);
    size_t I = 0;
    while (I < N && Cfg.Streams[I].Name != Name)
      ++I;
    if (I == N || St[I].Done)
      continue;
    MuxStream &M = St[I];
    StreamResult &R = Results[I];
    if (Rest.rfind("DRAINING ", 0) == 0) {
      M.Draining = true;
    } else if (Rest.rfind("VIOLATION ", 0) == 0) {
      if (!M.Draining) {
        M.Jsonl << Rest.substr(10) << "\n";
        M.Jsonl.flush();
        ++R.Violations;
      }
    } else if (Rest.rfind("FINAL ", 0) == 0) {
      if (!M.Draining) {
        R.GotFinal = true;
        R.Consistent =
            Rest.find("\"consistent\":true") != std::string_view::npos;
        std::ofstream Final(Cfg.OutDir + "/" + Cfg.Streams[I].Name +
                            ".final.json");
        Final << Rest.substr(6) << "\n";
      }
    } else if (Rest == "BYE") {
      M.Done = true;
      --Open;
    } else if (Rest.rfind("ERR", 0) == 0) {
      if (Cfg.Streams[I].ExpectQuota &&
          Rest.rfind("ERR quota", 0) == 0) {
        R.QuotaErr = true;
      } else {
        R.Error = true;
        R.ErrorText = std::string(Rest);
      }
    }
  }
  if (Open > 0)
    FailAll("connection dropped before FINAL");
  S.shutdownWrite();
  Sender.join();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: awdit-loadgen --port P [--host H] [--out-dir DIR]\n"
      "           [--chunk-bytes N] [--throttle-ms N] [--rate MBPS]"
      " [--reconnect] [--retry-sec S]\n"
      "           [--token SECRET] [--mux]\n"
      "           [--probe-interval-ms N (STATS round-trip probes between"
      " chunks;\n"
      "            default 250, 0 off)] [--latency-out FILE (write the"
      " client-observed\n"
      "            p50/p95/p99 summary as JSON)]\n"
      "           --stream NAME=FILE[:level=rc|ra|cc][:interval=N]"
      "[:window=N][:format=F]\n"
      "                    [:window-bytes=N][:inbox-bytes=N]"
      "[:outq-bytes=N]\n"
      "                    [:stall-ms=N][:drop-every-bytes=N]"
      "[:expect-quota=1] ...\n");
  return 2;
}

bool parseStreamSpec(const std::string &Arg, StreamSpec &Spec) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  Spec.Name = Arg.substr(0, Eq);
  std::string Rest = Arg.substr(Eq + 1);
  size_t Colon = Rest.find(':');
  Spec.File = Rest.substr(0, Colon);
  while (Colon != std::string::npos) {
    size_t Next = Rest.find(':', Colon + 1);
    std::string Opt = Rest.substr(
        Colon + 1,
        Next == std::string::npos ? std::string::npos : Next - Colon - 1);
    if (Opt.rfind("level=", 0) == 0)
      Spec.Level = Opt.substr(6);
    else if (Opt.rfind("stall-ms=", 0) == 0)
      Spec.StallMs = std::strtoull(Opt.c_str() + 9, nullptr, 10);
    else if (Opt.rfind("drop-every-bytes=", 0) == 0)
      Spec.DropEveryBytes = std::strtoull(Opt.c_str() + 17, nullptr, 10);
    else if (Opt.rfind("expect-quota=", 0) == 0)
      Spec.ExpectQuota = Opt.substr(13) == "1";
    else if (!Opt.empty())
      Spec.Options.push_back(Opt);
    Colon = Next;
  }
  return !Spec.File.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  Config Cfg;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--host")
      Cfg.Host = Value();
    else if (Arg == "--port")
      Cfg.Port = static_cast<uint16_t>(std::atoi(Value()));
    else if (Arg == "--out-dir")
      Cfg.OutDir = Value();
    else if (Arg == "--chunk-bytes")
      Cfg.ChunkBytes = static_cast<size_t>(std::atoll(Value()));
    else if (Arg == "--throttle-ms")
      Cfg.ThrottleMs = static_cast<uint64_t>(std::atoll(Value()));
    else if (Arg == "--rate")
      Cfg.RateMBps = std::atof(Value());
    else if (Arg == "--retry-sec")
      Cfg.RetrySec = static_cast<uint64_t>(std::atoll(Value()));
    else if (Arg == "--reconnect")
      Cfg.Reconnect = true;
    else if (Arg == "--mux")
      Cfg.Mux = true;
    else if (Arg == "--token")
      Cfg.Token = Value();
    else if (Arg == "--probe-interval-ms")
      Cfg.ProbeIntervalMs = static_cast<uint64_t>(std::atoll(Value()));
    else if (Arg == "--latency-out")
      Cfg.LatencyOut = Value();
    else if (Arg == "--stream") {
      StreamSpec Spec;
      if (!parseStreamSpec(Value(), Spec)) {
        std::fprintf(stderr, "error: bad --stream spec\n");
        return 2;
      }
      Cfg.Streams.push_back(std::move(Spec));
    } else {
      return usage();
    }
  }
  if (Cfg.Port == 0 || Cfg.Streams.empty())
    return usage();
  if (Cfg.ChunkBytes == 0)
    Cfg.ChunkBytes = 64 << 10;

  std::error_code Ec;
  std::filesystem::create_directories(Cfg.OutDir, Ec);

  // One thread per stream (N concurrent tenants), or — with --mux — every
  // stream multiplexed over one connection.
  std::vector<StreamResult> Results(Cfg.Streams.size());
  auto WallStart = std::chrono::steady_clock::now();
  if (Cfg.Mux) {
    runMuxAll(Cfg, Results);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Cfg.Streams.size());
    for (size_t I = 0; I < Cfg.Streams.size(); ++I)
      Threads.emplace_back([&, I] {
        runStream(Cfg, Cfg.Streams[I], Results[I]);
      });
    for (std::thread &T : Threads)
      T.join();
  }
  double WallSecs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - WallStart)
                        .count();

  bool AnyError = false, AnyInconsistent = false;
  for (size_t I = 0; I < Cfg.Streams.size(); ++I) {
    const StreamResult &R = Results[I];
    if (Cfg.Streams[I].ExpectQuota) {
      // Success for these streams is the typed refusal itself.
      if (R.QuotaErr && !R.Error) {
        std::printf("stream %s: quota-limited (expected)\n",
                    Cfg.Streams[I].Name.c_str());
      } else {
        std::printf("stream %s: ERROR expected an 'ERR quota' reply%s%s\n",
                    Cfg.Streams[I].Name.c_str(),
                    R.ErrorText.empty() ? "" : ", got ",
                    R.ErrorText.c_str());
        AnyError = true;
      }
      continue;
    }
    if (R.Error || !R.GotFinal) {
      std::printf("stream %s: ERROR %s\n", Cfg.Streams[I].Name.c_str(),
                  R.ErrorText.c_str());
      AnyError = true;
      continue;
    }
    std::string Suffix;
    if (R.Reconnects)
      Suffix = " reconnects=" + std::to_string(R.Reconnects);
    std::printf("stream %s: %s violations=%llu%s\n",
                Cfg.Streams[I].Name.c_str(),
                R.Consistent ? "consistent" : "INCONSISTENT",
                static_cast<unsigned long long>(R.Violations),
                Suffix.c_str());
    if (!R.Consistent)
      AnyInconsistent = true;
  }

  // Aggregate wire throughput across all streams (includes END handshake
  // wait, so a fast server reads close to the raw sender rate).
  uint64_t TotalBytes = 0, TotalLines = 0;
  for (const StreamResult &R : Results) {
    TotalBytes += R.SentBytes;
    TotalLines += R.SentLines;
  }
  double Secs = WallSecs > 0 ? WallSecs : 1e-9;
  std::printf("throughput: bytes=%llu lines=%llu secs=%.3f "
              "bytes_per_sec=%.0f lines_per_sec=%.0f\n",
              static_cast<unsigned long long>(TotalBytes),
              static_cast<unsigned long long>(TotalLines),
              WallSecs, static_cast<double>(TotalBytes) / Secs,
              static_cast<double>(TotalLines) / Secs);

  // Client-observed latency across every stream: HELLO handshakes plus
  // all answered STATS probes. Exact quantiles (sorted samples, nearest
  // rank) — the sample counts here are small enough to keep raw.
  std::vector<uint64_t> Lat;
  for (const StreamResult &R : Results)
    Lat.insert(Lat.end(), R.LatencyMicros.begin(), R.LatencyMicros.end());
  std::sort(Lat.begin(), Lat.end());
  auto Pct = [&](double Q) -> uint64_t {
    if (Lat.empty())
      return 0;
    size_t I = static_cast<size_t>(Q * static_cast<double>(Lat.size()));
    return Lat[std::min(I, Lat.size() - 1)];
  };
  std::printf("latency: samples=%zu p50_us=%llu p95_us=%llu p99_us=%llu "
              "max_us=%llu\n",
              Lat.size(), static_cast<unsigned long long>(Pct(0.50)),
              static_cast<unsigned long long>(Pct(0.95)),
              static_cast<unsigned long long>(Pct(0.99)),
              static_cast<unsigned long long>(Lat.empty() ? 0
                                                          : Lat.back()));
  if (!Cfg.LatencyOut.empty()) {
    std::ofstream Out(Cfg.LatencyOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Cfg.LatencyOut.c_str());
      return 2;
    }
    Out << "{\"samples\":" << Lat.size() << ",\"p50_us\":" << Pct(0.50)
        << ",\"p95_us\":" << Pct(0.95) << ",\"p99_us\":" << Pct(0.99)
        << ",\"max_us\":" << (Lat.empty() ? 0 : Lat.back()) << "}\n";
  }
  return AnyError ? 2 : AnyInconsistent ? 1 : 0;
}
