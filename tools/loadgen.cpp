//===- tools/loadgen.cpp - Concurrent load generator for awdit serve -------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays N history files as N concurrent stream sessions against an
/// `awdit serve` instance — the client half of the server integration
/// smoke (CI) and of the fan-out bench. One thread per stream: HELLO,
/// seek to the offset the server reports (so a drained-and-restarted
/// server resumes mid-stream), feed the file in chunks, END, and record
/// everything the server pushes — VIOLATION lines to
/// `<out-dir>/<name>.client.jsonl`, the FINAL summary to
/// `<out-dir>/<name>.final.json`.
///
/// \code
///   awdit-loadgen --port P [--host H] [--out-dir DIR]
///       [--chunk-bytes N] [--throttle-ms N] [--rate MBPS] [--reconnect]
///       [--retry-sec S]
///       --stream NAME=FILE[:level=cc][:interval=N][:window=N]
///                [:window-edges=N][:window-age=T][:force-abort=T]
///                [:witnesses=N][:format=native|plume|dbcop]  ...
/// \endcode
///
/// With --reconnect a connection that drops mid-stream (a SIGTERM-drained
/// server, a restart) is retried until --retry-sec runs out; the re-HELLO
/// returns the resumed byte offset and the replay continues from there —
/// the client-side half of the server's crash-recovery story.
///
/// --rate MBPS paces each sender to at most MBPS megabytes (1e6 bytes)
/// per second — a token-bucket over the whole replay, so short bursts at
/// chunk granularity average out to the requested wire rate. After all
/// streams finish, a `throughput:` line reports aggregate bytes/sec and
/// lines/sec as observed by the senders — the client-side counterpart of
/// the BM_IngestBytesPerSec bench counter.
///
/// Exit code: 2 on any protocol/IO error, else 1 if any stream was
/// inconsistent, else 0.
///
//===----------------------------------------------------------------------===//

#include "support/socket.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace awdit;

namespace {

struct StreamSpec {
  std::string Name;
  std::string File;
  std::string Level = "cc";
  /// Raw k=v options forwarded into the HELLO line.
  std::vector<std::string> Options;
};

struct Config {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  std::string OutDir = ".";
  size_t ChunkBytes = 64 << 10;
  uint64_t ThrottleMs = 0;
  double RateMBps = 0; // 0 = unthrottled
  bool Reconnect = false;
  uint64_t RetrySec = 30;
  std::vector<StreamSpec> Streams;
};

/// Buffered line reading over a blocking socket.
class LineReader {
public:
  explicit LineReader(const Socket &S) : S(S) {}

  /// False on EOF or error.
  bool next(std::string &Line) {
    for (;;) {
      size_t Nl = Buf.find('\n', Scan);
      if (Nl != std::string::npos) {
        Line = Buf.substr(0, Nl);
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        Buf.erase(0, Nl + 1);
        Scan = 0;
        return true;
      }
      Scan = Buf.size();
      char Tmp[4096];
      long N = S.readSome(Tmp, sizeof(Tmp));
      if (N <= 0)
        return false;
      Buf.append(Tmp, static_cast<size_t>(N));
    }
  }

private:
  const Socket &S;
  std::string Buf;
  size_t Scan = 0;
};

struct StreamResult {
  bool Error = false;
  std::string ErrorText;
  bool GotFinal = false;
  bool Consistent = true;
  uint64_t Violations = 0;
  uint64_t Reconnects = 0;
  uint64_t SentBytes = 0;
  uint64_t SentLines = 0;
};

/// One complete attach cycle: HELLO, feed from the reported offset, END,
/// read until FINAL/BYE or disconnect. Returns false when the connection
/// dropped before FINAL (caller may reconnect).
bool runOnce(const Config &Cfg, const StreamSpec &Spec,
             const std::string &Text, StreamResult &R,
             std::ofstream &Jsonl) {
  std::string Err;
  Socket S = tcpConnect(Cfg.Host, Cfg.Port, &Err);
  if (!S.valid()) {
    R.ErrorText = Err;
    return false;
  }
  LineReader Reader(S);

  std::string Hello = "HELLO " + Spec.Name + " " + Spec.Level;
  for (const std::string &Opt : Spec.Options)
    Hello += " " + Opt;
  Hello += "\n";
  if (!S.writeAll(Hello)) {
    R.ErrorText = "write failed during HELLO";
    return false;
  }
  std::string Line;
  if (!Reader.next(Line)) {
    R.ErrorText = "connection closed before HELLO reply";
    return false;
  }
  if (Line.rfind("ERR", 0) == 0) {
    R.ErrorText = Line;
    return false;
  }
  // "OK <stream> <status> offset=<N> line=<M>"
  uint64_t Offset = 0;
  {
    size_t Pos = Line.find("offset=");
    if (Pos != std::string::npos)
      Offset = std::strtoull(Line.c_str() + Pos + 7, nullptr, 10);
  }
  if (Offset > Text.size()) {
    R.ErrorText = "server offset " + std::to_string(Offset) +
                  " beyond input size " + std::to_string(Text.size());
    R.Error = true;
    return true; // not retryable
  }

  // Feed the rest of the file; the reader thread concurrently drains
  // pushed VIOLATION lines so neither side's socket buffer can deadlock.
  std::atomic<bool> SenderFailed{false};
  std::thread Sender([&] {
    auto Start = std::chrono::steady_clock::now();
    uint64_t Sent = 0;
    for (size_t Pos = Offset; Pos < Text.size(); Pos += Cfg.ChunkBytes) {
      std::string_view Chunk =
          std::string_view(Text).substr(Pos, Cfg.ChunkBytes);
      if (!S.writeAll(Chunk)) {
        SenderFailed.store(true);
        return;
      }
      Sent += Chunk.size();
      R.SentBytes += Chunk.size();
      R.SentLines += static_cast<uint64_t>(
          std::count(Chunk.begin(), Chunk.end(), '\n'));
      if (Cfg.RateMBps > 0) {
        // Token bucket over the whole replay: sleep until the bytes sent
        // so far would have taken this long at the requested rate.
        auto Due = Start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   static_cast<double>(Sent) /
                                   (Cfg.RateMBps * 1e6)));
        std::this_thread::sleep_until(Due);
      }
      if (Cfg.ThrottleMs)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(Cfg.ThrottleMs));
    }
    if (!S.writeAll("END\n"))
      SenderFailed.store(true);
  });

  bool SawBye = false;
  bool Draining = false;
  while (Reader.next(Line)) {
    if (Line.rfind("DRAINING ", 0) == 0) {
      // The server is checkpointing and shutting down mid-stream. What
      // follows (a courtesy FINAL, BYE) is not stream completion, and
      // its end-of-stream extrapolations are not part of the
      // exactly-once record — the resumed session re-reports anything
      // still detectable.
      Draining = true;
    } else if (Line.rfind("VIOLATION ", 0) == 0) {
      if (!Draining) {
        Jsonl << Line.substr(10) << "\n";
        Jsonl.flush();
        ++R.Violations;
      }
    } else if (Line.rfind("FINAL ", 0) == 0) {
      if (!Draining) {
        R.GotFinal = true;
        R.Consistent =
            Line.find("\"consistent\":true") != std::string::npos;
        std::ofstream Final(Cfg.OutDir + "/" + Spec.Name + ".final.json");
        Final << Line.substr(6) << "\n";
      }
    } else if (Line == "BYE") {
      SawBye = true;
      break;
    } else if (Line.rfind("ERR", 0) == 0) {
      R.Error = true;
      R.ErrorText = Line;
    }
    // OK/STATS lines are informational here.
  }
  S.shutdownWrite();
  Sender.join();
  if (R.Error)
    return true; // a protocol error is not retryable
  if (!R.GotFinal || !SawBye || SenderFailed.load()) {
    R.ErrorText = "connection dropped before FINAL";
    return false; // retryable: the server may have drained
  }
  return true;
}

void runStream(const Config &Cfg, const StreamSpec &Spec, StreamResult &R) {
  std::ifstream In(Spec.File, std::ios::binary);
  if (!In) {
    R.Error = true;
    R.ErrorText = "cannot open '" + Spec.File + "'";
    return;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  std::ofstream Jsonl(Cfg.OutDir + "/" + Spec.Name + ".client.jsonl",
                      std::ios::app);

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(Cfg.RetrySec);
  for (;;) {
    if (runOnce(Cfg, Spec, Text, R, Jsonl))
      return;
    if (!Cfg.Reconnect || std::chrono::steady_clock::now() >= Deadline) {
      R.Error = true;
      if (R.ErrorText.empty())
        R.ErrorText = "stream did not complete";
      return;
    }
    ++R.Reconnects;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: awdit-loadgen --port P [--host H] [--out-dir DIR]\n"
      "           [--chunk-bytes N] [--throttle-ms N] [--rate MBPS]"
      " [--reconnect] [--retry-sec S]\n"
      "           --stream NAME=FILE[:level=rc|ra|cc][:interval=N]"
      "[:window=N][:format=F] ...\n");
  return 2;
}

bool parseStreamSpec(const std::string &Arg, StreamSpec &Spec) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  Spec.Name = Arg.substr(0, Eq);
  std::string Rest = Arg.substr(Eq + 1);
  size_t Colon = Rest.find(':');
  Spec.File = Rest.substr(0, Colon);
  while (Colon != std::string::npos) {
    size_t Next = Rest.find(':', Colon + 1);
    std::string Opt = Rest.substr(
        Colon + 1,
        Next == std::string::npos ? std::string::npos : Next - Colon - 1);
    if (Opt.rfind("level=", 0) == 0)
      Spec.Level = Opt.substr(6);
    else if (!Opt.empty())
      Spec.Options.push_back(Opt);
    Colon = Next;
  }
  return !Spec.File.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  Config Cfg;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--host")
      Cfg.Host = Value();
    else if (Arg == "--port")
      Cfg.Port = static_cast<uint16_t>(std::atoi(Value()));
    else if (Arg == "--out-dir")
      Cfg.OutDir = Value();
    else if (Arg == "--chunk-bytes")
      Cfg.ChunkBytes = static_cast<size_t>(std::atoll(Value()));
    else if (Arg == "--throttle-ms")
      Cfg.ThrottleMs = static_cast<uint64_t>(std::atoll(Value()));
    else if (Arg == "--rate")
      Cfg.RateMBps = std::atof(Value());
    else if (Arg == "--retry-sec")
      Cfg.RetrySec = static_cast<uint64_t>(std::atoll(Value()));
    else if (Arg == "--reconnect")
      Cfg.Reconnect = true;
    else if (Arg == "--stream") {
      StreamSpec Spec;
      if (!parseStreamSpec(Value(), Spec)) {
        std::fprintf(stderr, "error: bad --stream spec\n");
        return 2;
      }
      Cfg.Streams.push_back(std::move(Spec));
    } else {
      return usage();
    }
  }
  if (Cfg.Port == 0 || Cfg.Streams.empty())
    return usage();
  if (Cfg.ChunkBytes == 0)
    Cfg.ChunkBytes = 64 << 10;

  std::error_code Ec;
  std::filesystem::create_directories(Cfg.OutDir, Ec);

  // One thread per stream: N concurrent tenants against the server.
  std::vector<StreamResult> Results(Cfg.Streams.size());
  std::vector<std::thread> Threads;
  Threads.reserve(Cfg.Streams.size());
  auto WallStart = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Cfg.Streams.size(); ++I)
    Threads.emplace_back([&, I] {
      runStream(Cfg, Cfg.Streams[I], Results[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  double WallSecs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - WallStart)
                        .count();

  bool AnyError = false, AnyInconsistent = false;
  for (size_t I = 0; I < Cfg.Streams.size(); ++I) {
    const StreamResult &R = Results[I];
    if (R.Error || !R.GotFinal) {
      std::printf("stream %s: ERROR %s\n", Cfg.Streams[I].Name.c_str(),
                  R.ErrorText.c_str());
      AnyError = true;
      continue;
    }
    std::string Suffix;
    if (R.Reconnects)
      Suffix = " reconnects=" + std::to_string(R.Reconnects);
    std::printf("stream %s: %s violations=%llu%s\n",
                Cfg.Streams[I].Name.c_str(),
                R.Consistent ? "consistent" : "INCONSISTENT",
                static_cast<unsigned long long>(R.Violations),
                Suffix.c_str());
    if (!R.Consistent)
      AnyInconsistent = true;
  }

  // Aggregate wire throughput across all streams (includes END handshake
  // wait, so a fast server reads close to the raw sender rate).
  uint64_t TotalBytes = 0, TotalLines = 0;
  for (const StreamResult &R : Results) {
    TotalBytes += R.SentBytes;
    TotalLines += R.SentLines;
  }
  double Secs = WallSecs > 0 ? WallSecs : 1e-9;
  std::printf("throughput: bytes=%llu lines=%llu secs=%.3f "
              "bytes_per_sec=%.0f lines_per_sec=%.0f\n",
              static_cast<unsigned long long>(TotalBytes),
              static_cast<unsigned long long>(TotalLines),
              WallSecs, static_cast<double>(TotalBytes) / Secs,
              static_cast<double>(TotalLines) / Secs);
  return AnyError ? 2 : AnyInconsistent ? 1 : 0;
}
