//===- bench/trace_overhead.cpp - Tracing must be near-free when off --------===//
//
// The proof bench for the observability core's headline promise: spans
// compiled in everywhere, paying ~nothing until someone turns tracing on.
//
//  - BM_TraceOverhead: the disabled-path tax at deployment granularity —
//    the measured cost of one disabled span as a fraction of the measured
//    time of the decode batch it would wrap (min-of-N absolute timings of
//    each, in one process). Reports `disabled_overhead_pct` and the gated
//    counter `disabled_overhead_headroom_pct` = 2.0 - overhead_pct: CI
//    floors it at 0 with `compare_bench.py --counter-gate`, i.e. the
//    disabled-path tax may not exceed 2%.
//  - BM_TraceSpanDisabled: the raw per-span cost with tracing off — two
//    relaxed atomic loads and nothing else; nanoseconds per span.
//  - BM_TraceSpanEnabled: the recording path (clock reads + one ring
//    slot claim); what an operator pays per span while `TRACE on`.
//
//===----------------------------------------------------------------------===//

#include "io/stream_parser.h"
#include "io/text_format.h"
#include "io/token_util.h"
#include "obs/trace.h"
#include "workload/generator.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <string_view>
#include <vector>

using namespace awdit;

namespace {

struct Corpus {
  std::vector<std::string_view> Lines; // newline stripped
  std::string Text;                    // backing storage for the views
};

const Corpus &corpus() {
  static const Corpus C = [] {
    GenerateParams P;
    P.Bench = Benchmark::CTwitter;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = 32;
    P.Txns = 8192;
    P.Seed = 12345;
    Corpus Out;
    Out.Text = writeTextHistory(generateHistory(P));
    std::string_view V = Out.Text;
    size_t Pos = 0;
    while (Pos < V.size()) {
      size_t Nl = io::scanToNewline(V, Pos);
      Out.Lines.push_back(V.substr(Pos, Nl - Pos));
      Pos = Nl + 1;
    }
    return Out;
  }();
  return C;
}

/// The batch size applyBatch sees from the sharded pipeline — spans in
/// the product wrap batches and stages, never single lines, and the
/// overhead claim is about that deployment granularity.
constexpr size_t SpanBatchLines = 256;

uint64_t decodePlain(LineDecoder Decode, const Corpus &C) {
  uint64_t Sink = 0;
  for (std::string_view Line : C.Lines) {
    LineEvent E = Decode(Line);
    Sink += static_cast<uint64_t>(E.Kind) + E.K + E.V + E.Num;
  }
  return Sink;
}

uint64_t decodeSpanned(LineDecoder Decode, const Corpus &C) {
  uint64_t Sink = 0;
  for (size_t Base = 0; Base < C.Lines.size(); Base += SpanBatchLines) {
    AWDIT_SPAN("bench.batch");
    size_t End = std::min(Base + SpanBatchLines, C.Lines.size());
    for (size_t I = Base; I < End; ++I) {
      LineEvent E = Decode(C.Lines[I]);
      Sink += static_cast<uint64_t>(E.Kind) + E.K + E.V + E.Num;
    }
  }
  return Sink;
}

/// Wall-clock seconds of one call.
template <typename FnT> double timeSecs(FnT &&Fn) {
  auto T0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Fn());
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

void BM_TraceOverhead(benchmark::State &State) {
  const Corpus &C = corpus();
  LineDecoder Decode = lineDecoderFor("native");
  obs::setTraceEnabled(false);
  for (auto _ : State)
    benchmark::DoNotOptimize(decodeSpanned(Decode, C));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(C.Lines.size()));
  // The acceptance ratio: what fraction of a decode batch's time the
  // disabled span machinery costs. Both factors are *absolute* minimum
  // times (min-of-N discards scheduler/cache noise, the systematic cost
  // survives), so the quotient is stable enough to gate at 2% on a
  // shared runner — unlike subtracting two separately compiled decode
  // loops, where code-layout luck alone swings the difference by more
  // than the effect being measured.
  constexpr int SpansPerTimedLoop = 1 << 20;
  auto SpanLoop = [&] {
    for (int I = 0; I < SpansPerTimedLoop; ++I) {
      AWDIT_SPAN("bench.noop");
      benchmark::ClobberMemory();
    }
    return SpansPerTimedLoop;
  };
  double SpanSecs = timeSecs(SpanLoop);
  double PassSecs = timeSecs([&] { return decodeSpanned(Decode, C); });
  for (int I = 0; I < 7; ++I) {
    SpanSecs = std::min(SpanSecs, timeSecs(SpanLoop));
    PassSecs =
        std::min(PassSecs, timeSecs([&] { return decodeSpanned(Decode, C); }));
  }
  double SecsPerSpan = SpanSecs / SpansPerTimedLoop;
  double SecsPerBatch =
      PassSecs / (static_cast<double>(C.Lines.size()) / SpanBatchLines);
  double OverheadPct =
      SecsPerBatch > 0 ? SecsPerSpan / SecsPerBatch * 100.0 : 100.0;
  State.counters["disabled_overhead_pct"] = OverheadPct;
  State.counters["disabled_overhead_headroom_pct"] = 2.0 - OverheadPct;
}
BENCHMARK(BM_TraceOverhead);

void BM_TraceSpanDisabled(benchmark::State &State) {
  obs::setTraceEnabled(false);
  for (auto _ : State) {
    AWDIT_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State &State) {
  obs::traceClear();
  obs::setTraceEnabled(true);
  for (auto _ : State) {
    AWDIT_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
  obs::setTraceEnabled(false);
  obs::traceClear();
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_TraceSpanEnabled);

} // namespace

BENCHMARK_MAIN();
