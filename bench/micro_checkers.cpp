//===- bench/micro_checkers.cpp - Component micro-benchmarks -----------------===//
//
// google-benchmark micro-benchmarks for the checker components and the
// design-choice ablations DESIGN.md calls out:
//   - per-level AWDIT throughput vs the exhaustive baselines (the
//     "minimal saturation" ablation);
//   - Read Consistency and ComputeHB in isolation;
//   - the single-session RA fast path vs the general algorithm
//     (Theorem 1.6 ablation).
//
//===----------------------------------------------------------------------===//

#include "baseline/naive_checker.h"
#include "checker/checkpoint.h"
#include "baseline/plume_like.h"
#include "checker/check_cc.h"
#include "checker/check_ra.h"
#include "checker/check_ra_single_session.h"
#include "checker/check_rc.h"
#include "checker/checker.h"
#include "checker/monitor.h"
#include "checker/read_consistency.h"
#include "graph/tree_clock.h"
#include "graph/vector_clock.h"
#include "io/sharded_ingest.h"
#include "io/text_format.h"
#include "server/server.h"
#include "support/socket.h"
#include "workload/generator.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

using namespace awdit;

namespace {

/// Cached histories so generation cost stays out of the measurement.
const History &cachedHistory(size_t Txns) {
  static std::map<size_t, History> Cache;
  auto It = Cache.find(Txns);
  if (It == Cache.end()) {
    GenerateParams P;
    P.Bench = Benchmark::CTwitter;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = 32;
    P.Txns = Txns;
    P.Seed = 12345;
    It = Cache.emplace(Txns, generateHistory(P)).first;
  }
  return It->second;
}

const History &cachedSingleSessionHistory(size_t Txns) {
  static std::map<size_t, History> Cache;
  auto It = Cache.find(Txns);
  if (It == Cache.end()) {
    ClientWorkload W;
    W.Sessions.resize(1);
    Rng Rand(7);
    ClientTxn Init;
    for (Key K = 1; K <= 64; ++K)
      Init.Ops.push_back(ClientOp::write(K));
    W.Sessions[0].Txns.push_back(std::move(Init));
    for (size_t T = 0; T < Txns; ++T) {
      ClientTxn Txn;
      for (int O = 0; O < 6; ++O) {
        Key K = 1 + Rand.nextBelow(64);
        Txn.Ops.push_back(Rand.nextBool(0.4) ? ClientOp::write(K)
                                             : ClientOp::read(K));
      }
      W.Sessions[0].Txns.push_back(std::move(Txn));
    }
    SimConfig C;
    C.Mode = ConsistencyMode::Serializable;
    C.Seed = 11;
    It = Cache.emplace(Txns, *simulateDatabase(W, C)).first;
  }
  return It->second;
}

void reportOps(benchmark::State &State, const History &H) {
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(H.numOps()));
}

} // namespace

static void BM_ReadConsistency(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::vector<Violation> Out;
    benchmark::DoNotOptimize(checkReadConsistency(H, Out));
  }
  reportOps(State, H);
}
BENCHMARK(BM_ReadConsistency)->Arg(1024)->Arg(4096)->Arg(16384);

static void BM_ComputeHappensBefore(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    HappensBefore HB;
    benchmark::DoNotOptimize(computeHappensBefore(H, HB));
  }
  reportOps(State, H);
}
BENCHMARK(BM_ComputeHappensBefore)->Arg(1024)->Arg(4096)->Arg(16384);

static void BM_AwditRc(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::vector<Violation> Out;
    benchmark::DoNotOptimize(checkRc(H, Out, /*MaxWitnesses=*/1));
  }
  reportOps(State, H);
}
BENCHMARK(BM_AwditRc)->Arg(1024)->Arg(4096)->Arg(16384);

static void BM_AwditRa(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::vector<Violation> Out;
    benchmark::DoNotOptimize(checkRa(H, Out, /*MaxWitnesses=*/1));
  }
  reportOps(State, H);
}
BENCHMARK(BM_AwditRa)->Arg(1024)->Arg(4096)->Arg(16384);

static void BM_AwditCc(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::vector<Violation> Out;
    benchmark::DoNotOptimize(checkCc(H, Out, /*MaxWitnesses=*/1));
  }
  reportOps(State, H);
}
BENCHMARK(BM_AwditCc)->Arg(1024)->Arg(4096)->Arg(16384);

// Ablation: minimal saturation (AWDIT) vs exhaustive TAP sweep (Plume
// class) vs exhaustive inference with backward searches (naive class).
static void BM_AblationPlumeLikeCc(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  PlumeLikeChecker Plume;
  Deadline NoLimit(0.0);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Plume.check(H, IsolationLevel::CausalConsistency, NoLimit));
  reportOps(State, H);
}
BENCHMARK(BM_AblationPlumeLikeCc)->Arg(1024)->Arg(4096);

static void BM_AblationNaiveCc(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  NaiveChecker Naive;
  Deadline NoLimit(0.0);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Naive.check(H, IsolationLevel::CausalConsistency, NoLimit));
  reportOps(State, H);
}
BENCHMARK(BM_AblationNaiveCc)->Arg(1024)->Arg(2048);

// Ablation: Theorem 1.6 linear fast path vs the general RA algorithm on
// single-session histories.
static void BM_RaSingleSessionFastPath(benchmark::State &State) {
  const History &H =
      cachedSingleSessionHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::vector<Violation> Out;
    benchmark::DoNotOptimize(checkRaSingleSession(H, Out));
  }
  reportOps(State, H);
}
BENCHMARK(BM_RaSingleSessionFastPath)->Arg(4096)->Arg(16384);

static void BM_RaSingleSessionGeneral(benchmark::State &State) {
  const History &H =
      cachedSingleSessionHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::vector<Violation> Out;
    benchmark::DoNotOptimize(checkRa(H, Out, /*MaxWitnesses=*/1));
  }
  reportOps(State, H);
}
BENCHMARK(BM_RaSingleSessionGeneral)->Arg(4096)->Arg(16384);

// Ablation: Algorithm 3 as written (full HB matrix + pointer scans) vs
// the paper tool's on-the-fly variant (recycled rows + binary search).
static void BM_AwditCcOnTheFly(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    std::vector<Violation> Out;
    benchmark::DoNotOptimize(checkCcOnTheFly(H, Out, /*MaxWitnesses=*/1));
  }
  reportOps(State, H);
}
BENCHMARK(BM_AwditCcOnTheFly)->Arg(1024)->Arg(4096)->Arg(16384);

// Ablation: tree clock vs vector clock joins on a message-passing trace
// with localized updates (the regime tree clocks are designed for).
static void BM_VectorClockJoins(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    std::vector<VectorClock> Clocks;
    for (size_t S = 0; S < K; ++S)
      Clocks.emplace_back(K);
    Rng Rand(3);
    for (int Step = 0; Step < 4000; ++Step) {
      // Pull model: the acting session ticks, then absorbs a peer.
      size_t S = Rand.nextBelow(K);
      Clocks[S].set(S, Clocks[S].get(S) + 1);
      size_t From = Rand.nextBelow(K);
      if (From != S)
        Clocks[S].joinWith(Clocks[From]);
    }
    benchmark::DoNotOptimize(Clocks);
  }
}
BENCHMARK(BM_VectorClockJoins)->Arg(64)->Arg(256);

static void BM_TreeClockJoins(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    std::vector<TreeClock> Clocks;
    for (size_t S = 0; S < K; ++S)
      Clocks.emplace_back(K, static_cast<uint32_t>(S));
    Rng Rand(3);
    for (int Step = 0; Step < 4000; ++Step) {
      // Pull model: the acting session ticks, then absorbs a peer.
      size_t S = Rand.nextBelow(K);
      Clocks[S].tick();
      size_t From = Rand.nextBelow(K);
      if (From != S)
        Clocks[S].join(Clocks[From]);
    }
    benchmark::DoNotOptimize(Clocks);
  }
}
BENCHMARK(BM_TreeClockJoins)->Arg(64)->Arg(256);

// Parallel engine scaling: the same check at 1/2/4/8 workers on the large
// generated history. Threads = 1 is the exact sequential legacy path, so
// each family reports the single- vs multi-thread speedup directly
// (items_per_second column). ParallelThreshold is forced to 0 so the
// thread count, not the history size, selects the engine.
static void runParallelLevel(benchmark::State &State, IsolationLevel Level) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  CheckOptions Options;
  Options.MaxWitnesses = 1;
  Options.Threads = static_cast<unsigned>(State.range(1));
  Options.ParallelThreshold = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(checkIsolation(H, Level, Options));
  reportOps(State, H);
}

static void BM_ParallelRc(benchmark::State &State) {
  runParallelLevel(State, IsolationLevel::ReadCommitted);
}
BENCHMARK(BM_ParallelRc)
    ->Args({65536, 1})->UseRealTime()
    ->Args({65536, 2})->UseRealTime()
    ->Args({65536, 4})->UseRealTime()
    ->Args({65536, 8});

static void BM_ParallelRa(benchmark::State &State) {
  runParallelLevel(State, IsolationLevel::ReadAtomic);
}
BENCHMARK(BM_ParallelRa)
    ->Args({65536, 1})->UseRealTime()
    ->Args({65536, 2})->UseRealTime()
    ->Args({65536, 4})->UseRealTime()
    ->Args({65536, 8});

static void BM_ParallelCc(benchmark::State &State) {
  runParallelLevel(State, IsolationLevel::CausalConsistency);
}
BENCHMARK(BM_ParallelCc)
    ->Args({65536, 1})->UseRealTime()
    ->Args({65536, 2})->UseRealTime()
    ->Args({65536, 4})->UseRealTime()
    ->Args({65536, 8});

// Streaming monitor ingest throughput: the whole history fed one
// transaction at a time with an incremental checking pass every
// `interval` commits (the `awdit monitor` hot path). Args: {txns,
// interval}; interval 0 defers all checking to finalize, which is the
// one-shot wrapper configuration and the baseline to compare against.
static void runMonitorIngest(benchmark::State &State, IsolationLevel Level,
                             size_t WindowTxns) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  size_t Interval = static_cast<size_t>(State.range(1));
  for (auto _ : State) {
    MonitorOptions Options;
    Options.Level = Level;
    Options.Check.MaxWitnesses = 1;
    Options.CheckIntervalTxns = Interval;
    Options.WindowTxns = WindowTxns;
    Monitor M(Options);
    M.replay(H);
    benchmark::DoNotOptimize(M.finalize());
  }
  reportOps(State, H);
}

static void BM_MonitorIngestRc(benchmark::State &State) {
  runMonitorIngest(State, IsolationLevel::ReadCommitted, /*WindowTxns=*/0);
}
BENCHMARK(BM_MonitorIngestRc)
    ->Args({4096, 0})
    ->Args({4096, 256})
    ->Args({16384, 256})
    ->Args({16384, 1024});

static void BM_MonitorIngestRa(benchmark::State &State) {
  runMonitorIngest(State, IsolationLevel::ReadAtomic, /*WindowTxns=*/0);
}
BENCHMARK(BM_MonitorIngestRa)
    ->Args({4096, 0})
    ->Args({4096, 256})
    ->Args({16384, 256})
    ->Args({16384, 1024});

static void BM_MonitorIngestCc(benchmark::State &State) {
  runMonitorIngest(State, IsolationLevel::CausalConsistency,
                   /*WindowTxns=*/0);
}
BENCHMARK(BM_MonitorIngestCc)
    ->Args({4096, 0})
    ->Args({4096, 256})
    ->Args({16384, 1024});

// Windowed ingest: bounded memory with eviction every pass. The window is
// a quarter of the stream so compaction runs repeatedly.
static void BM_MonitorWindowedCc(benchmark::State &State) {
  runMonitorIngest(State, IsolationLevel::CausalConsistency,
                   /*WindowTxns=*/static_cast<size_t>(State.range(0)) / 4);
}
BENCHMARK(BM_MonitorWindowedCc)->Args({4096, 256})->Args({16384, 1024});

// Steady-state flush cost as the live window grows: prefill `window`
// transactions (untimed), then measure ingest of a fixed 2048-transaction
// tail at a small flush cadence. With the delta-driven saturation engine
// the per-item time stays roughly flat as the window grows; an engine that
// re-scans the window each flush degrades linearly with it.
static void BM_MonitorFlushScalingCc(benchmark::State &State) {
  size_t Window = static_cast<size_t>(State.range(0));
  constexpr size_t Tail = 2048;
  const History &H = cachedHistory(Window + Tail);
  int64_t TailOps = 0;
  for (TxnId Id = static_cast<TxnId>(Window);
       Id < static_cast<TxnId>(Window + Tail); ++Id)
    TailOps += static_cast<int64_t>(H.txn(Id).size());

  for (auto _ : State) {
    State.PauseTiming();
    auto M = std::make_unique<Monitor>([&] {
      MonitorOptions Options;
      Options.Level = IsolationLevel::CausalConsistency;
      Options.Check.MaxWitnesses = 1;
      Options.CheckIntervalTxns = 64;
      return Options;
    }());
    while (M->numSessions() < H.numSessions())
      M->addSession();
    auto FeedOne = [&](TxnId Id) {
      const Transaction &T = H.txn(Id);
      TxnId Mid = M->beginTxn(T.Session);
      for (const Operation &Op : T.Ops)
        M->append(Mid, Op);
      if (T.Committed)
        M->commit(Mid);
      else
        M->abortTxn(Mid);
    };
    for (TxnId Id = 0; Id < static_cast<TxnId>(Window); ++Id)
      FeedOne(Id);
    State.ResumeTiming();

    for (TxnId Id = static_cast<TxnId>(Window);
         Id < static_cast<TxnId>(Window + Tail); ++Id)
      FeedOne(Id);
    benchmark::DoNotOptimize(M->stats().Flushes);

    State.PauseTiming();
    M.reset(); // teardown untimed
    State.ResumeTiming();
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          TailOps);
}
BENCHMARK(BM_MonitorFlushScalingCc)->Arg(4096)->Arg(16384)->Arg(65536);

// O(delta) checkpoints: the monolithic v1 file re-serializes the whole
// window on every checkpoint; a store-backed v2 commit appends only the
// chunks whose bytes changed since the last flush. One iteration streams
// ~1.5 windows of c-twitter, checkpointing every 256 commits at every
// window size — the checkpoint cadence is a user knob independent of the
// window, so fixing it isolates the claim under test: v2 bytes track the
// flush delta while v1 bytes track the window. The counters expose the
// average bytes one v1 and one v2 checkpoint cost and the resulting
// reduction (the CI gate reads reduction_x, which must grow with the
// window).
static void BM_CheckpointDelta(benchmark::State &State) {
  size_t Window = static_cast<size_t>(State.range(0));
  const History &H = cachedHistory(Window + Window / 2);
  std::string Text = writeTextHistory(H);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.Check.MaxWitnesses = 1;
  Options.Check.Threads = 1;
  Options.CheckIntervalTxns = 256;
  Options.WindowTxns = Window;

  uint64_t V1Bytes = 0, V1Samples = 0, V2Bytes = 0, Commits = 0;
  for (auto _ : State) {
    namespace fs = std::filesystem;
    fs::path Dir = fs::temp_directory_path() /
                   ("awdit_bench_store_" + std::to_string(::getpid()));
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    V1Bytes = V1Samples = V2Bytes = Commits = 0;
    StoreCheckpointer Ckpt;
    std::string Err;
    if (!Ckpt.open(Dir.string(), &Err)) {
      State.SkipWithError(Err.c_str());
      return;
    }
    Monitor M(Options);
    ShardedMonitorIngest Ingest(
        M, "native", /*Threads=*/1, [&](const IngestFlushPoint &P) {
          CheckpointMeta Meta;
          Meta.Format = "native";
          Meta.Options = Options;
          Meta.StreamOffset = P.StreamOffset;
          Meta.LineNo = P.LineNo;
          Meta.CommittedTxns = P.CommittedTxns;
          Meta.Flushes = P.Flushes;
          std::string MachineBlob;
          ByteWriter W(MachineBlob);
          P.Machine.saveState(W);
          uint64_t Before = Ckpt.bytesAppended();
          std::string WErr;
          if (!Ckpt.write(P.M, MachineBlob, Meta, &WErr))
            return;
          V2Bytes += Ckpt.bytesAppended() - Before;
          ++Commits;
          // The v1 cost (a full re-encode) is flat once the window fills;
          // sample it so the measured loop stays about the store.
          if (Commits % 8 == 1) {
            V1Bytes += encodeCheckpoint(P.M, MachineBlob, Meta).size();
            ++V1Samples;
          }
        });
    for (size_t Pos = 0; Pos < Text.size(); Pos += size_t(1) << 16)
      if (!Ingest.feed(std::string_view(Text).substr(Pos, size_t(1) << 16)))
        break;
    Ingest.finishStream();
    benchmark::DoNotOptimize(M.stats().Flushes);
    fs::remove_all(Dir, Ec);
  }
  double V1Avg =
      V1Samples ? static_cast<double>(V1Bytes) / static_cast<double>(V1Samples)
                : 0.0;
  double V2Avg =
      Commits ? static_cast<double>(V2Bytes) / static_cast<double>(Commits)
              : 0.0;
  State.counters["v1_bytes_per_ckpt"] = V1Avg;
  State.counters["v2_bytes_per_ckpt"] = V2Avg;
  State.counters["reduction_x"] = V2Avg > 0.0 ? V1Avg / V2Avg : 0.0;
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(H.numTxns()));
}
BENCHMARK(BM_CheckpointDelta)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// Sharded stream ingest: the `awdit monitor --threads N` hot path — raw
// text through the pipeline (line split -> sharded tokenization -> ordered
// apply) at a realistic cadence. Arg: thread count; 1 is the legacy
// synchronous path, the baseline the multi-core runs are compared to.
// Output is bit-identical at every thread count (enforced by
// tests/test_sharded_monitor.cpp), so this measures pure ingest
// throughput. Note: multi-core gains only show on multi-core machines.
static void BM_MonitorShardedIngest(benchmark::State &State) {
  const History &H = cachedHistory(16384);
  static const std::string Text = writeTextHistory(H);
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    MonitorOptions Options;
    Options.Level = IsolationLevel::CausalConsistency;
    Options.Check.MaxWitnesses = 1;
    Options.CheckIntervalTxns = 256;
    Monitor M(Options);
    ShardedMonitorIngest Ingest(M, "native", Threads);
    constexpr size_t Chunk = 1 << 16;
    for (size_t Pos = 0; Pos < Text.size(); Pos += Chunk)
      Ingest.feed(std::string_view(Text).substr(Pos, Chunk));
    Ingest.finishStream();
    benchmark::DoNotOptimize(M.finalize());
  }
  reportOps(State, H);
}
BENCHMARK(BM_MonitorShardedIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Multi-tenant server fan-out: aggregate committed-transaction throughput
// vs concurrent session count. Each iteration boots an `awdit serve`
// instance on an ephemeral loopback port (no checkpoint/sink dirs — pure
// protocol + checking cost) and replays one small history per session
// from concurrent client threads, HELLO through FINAL. items/s ~=
// aggregate txns/s across all tenants.
static void BM_ServerSessionFanout(benchmark::State &State) {
  size_t Sessions = static_cast<size_t>(State.range(0));
  const History &H = cachedHistory(512);
  static const std::string Text = writeTextHistory(cachedHistory(512));
  for (auto _ : State) {
    server::ServerOptions Options;
    Options.Host = "127.0.0.1";
    Options.Port = 0;
    Options.IdleTimeoutSec = 0;
    server::Server Srv(Options);
    std::string Err;
    if (!Srv.start(&Err)) {
      State.SkipWithError(Err.c_str());
      return;
    }
    std::thread Runner([&] { Srv.run(); });

    std::vector<std::thread> Clients;
    Clients.reserve(Sessions);
    std::atomic<bool> Failed{false};
    for (size_t I = 0; I < Sessions; ++I)
      Clients.emplace_back([&, I] {
        Socket S = tcpConnect("127.0.0.1", Srv.port(), nullptr);
        if (!S.valid() ||
            !S.writeAll("HELLO s" + std::to_string(I) +
                        " cc interval=64 witnesses=1\n") ||
            !S.writeAll(Text) || !S.writeAll("END\n")) {
          Failed.store(true);
          return;
        }
        // Drain replies until the server says BYE.
        std::string Buf;
        char Tmp[4096];
        for (;;) {
          long N = S.readSome(Tmp, sizeof(Tmp));
          if (N <= 0) {
            Failed.store(true);
            return;
          }
          Buf.append(Tmp, static_cast<size_t>(N));
          if (Buf.find("BYE\n") != std::string::npos)
            return;
          // Keep only a tail: BYE can straddle a read boundary.
          if (Buf.size() > 8192)
            Buf.erase(0, Buf.size() - 8);
        }
      });
    for (std::thread &C : Clients)
      C.join();
    Srv.requestShutdown();
    Runner.join();
    if (Failed.load()) {
      State.SkipWithError("a client failed");
      return;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Sessions) *
                          static_cast<int64_t>(H.numTxns()));
}
BENCHMARK(BM_ServerSessionFanout)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// End-to-end facade throughput (what the CLI pays per history).
static void BM_FacadeAllLevels(benchmark::State &State) {
  const History &H = cachedHistory(static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    for (IsolationLevel Level : AllIsolationLevels)
      benchmark::DoNotOptimize(checkIsolation(H, Level));
  reportOps(State, H);
}
BENCHMARK(BM_FacadeAllLevels)->Arg(4096);

BENCHMARK_MAIN();
