//===- bench/bench_util.h - Shared benchmark harness helpers ------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the figure/table reproduction binaries: timed checker
/// runs (AWDIT and baselines) with per-history timeouts, and environment
/// knobs for scaling the experiments (AWDIT_BENCH_SCALE=quick|full).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_BENCH_BENCH_UTIL_H
#define AWDIT_BENCH_BENCH_UTIL_H

#include "baseline/baseline.h"
#include "checker/checker.h"
#include "support/timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace awdit::bench {

/// Returns true when AWDIT_BENCH_SCALE=full is set: paper-scale runs
/// (minutes to hours) instead of the quick default.
inline bool fullScale() {
  const char *Env = std::getenv("AWDIT_BENCH_SCALE");
  return Env != nullptr && std::strcmp(Env, "full") == 0;
}

/// One timed run.
struct TimedResult {
  double Seconds = 0.0;
  bool Consistent = false;
  bool TimedOut = false;
};

/// Times an AWDIT check (witness extraction off: the paper measures the
/// decision procedure). \p Threads picks the engine: the default 1 is the
/// sequential algorithm the paper's figures measure; > 1 (or 0 = all
/// cores) times the sharded parallel engine.
inline TimedResult timeAwdit(const History &H, IsolationLevel Level,
                             unsigned Threads = 1) {
  CheckOptions Options;
  Options.MaxWitnesses = 1;
  Options.Threads = Threads;
  Options.ParallelThreshold = 0;
  Timer T;
  CheckReport Report = checkIsolation(H, Level, Options);
  return {T.elapsedSeconds(), Report.Consistent, false};
}

/// Times a baseline run under \p TimeoutSeconds.
inline TimedResult timeBaseline(BaselineChecker &Checker, const History &H,
                                IsolationLevel Level,
                                double TimeoutSeconds) {
  Timer T;
  BaselineResult Res = Checker.check(H, Level, Deadline(TimeoutSeconds));
  double Elapsed = T.elapsedSeconds();
  // Hard timeout semantics: an overshoot past the budget (e.g. the final
  // acyclicity pass after the last deadline poll) counts as DNF.
  bool TimedOut =
      Res.TimedOut || (TimeoutSeconds > 0 && Elapsed > TimeoutSeconds);
  return {Elapsed, Res.Consistent && !TimedOut, TimedOut};
}

/// Formats a timing cell: "12.345" seconds, or "timeout".
inline std::string cell(const TimedResult &R) {
  if (R.TimedOut)
    return "timeout";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", R.Seconds);
  return Buf;
}

} // namespace awdit::bench

#endif // AWDIT_BENCH_BENCH_UTIL_H
