//===- bench/fig8_large_scale.cpp - Paper Fig. 8 reproduction ----------------===//
//
// Fig. 8: aggregate AWDIT-vs-Plume comparison per isolation level across a
// corpus of histories (benchmarks x databases x sessions x txns). The paper
// reports per-history scatter points plus geometric-mean speedups over all
// histories and over the ~20% largest; the speedup grows with history size
// as Plume's solving phase starts to dominate.
//
// Substitutions: 3 databases -> 3 simulator modes (causal, read-atomic,
// read-committed); Plume -> PlumeLikeChecker.
//
// Scale: default sessions {50,100} x txns 2^10..2^14 (quick). Set
// AWDIT_BENCH_SCALE=full for txns up to 2^17 and a 2 h timeout.
//
//===----------------------------------------------------------------------===//

#include "baseline/plume_like.h"
#include "bench/bench_util.h"
#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace awdit;
using namespace awdit::bench;

namespace {

struct Point {
  std::string Name;
  size_t Txns;
  size_t Ops;
  double AwditSec;
  double PlumeSec;
  bool PlumeTimedOut;
};

double geomeanSpeedup(const std::vector<Point> &Points) {
  double LogSum = 0.0;
  size_t Count = 0;
  for (const Point &P : Points) {
    if (P.PlumeTimedOut || P.AwditSec <= 0.0)
      continue;
    LogSum += std::log(P.PlumeSec / P.AwditSec);
    ++Count;
  }
  return Count == 0 ? 0.0 : std::exp(LogSum / static_cast<double>(Count));
}

} // namespace

int main() {
  bool Full = fullScale();
  int MinExp = 10;
  int MaxExp = Full ? 17 : 14;
  double Timeout = Full ? 7200.0 : 60.0;

  const Benchmark Benches[] = {Benchmark::Rubis, Benchmark::CTwitter,
                               Benchmark::Tpcc};
  const ConsistencyMode Modes[] = {ConsistencyMode::Causal,
                                   ConsistencyMode::ReadAtomic,
                                   ConsistencyMode::ReadCommitted};
  const size_t SessionCounts[] = {50, 100};

  PlumeLikeChecker Plume;

  for (IsolationLevel Level : {IsolationLevel::ReadCommitted,
                               IsolationLevel::ReadAtomic,
                               IsolationLevel::CausalConsistency}) {
    std::printf("== Fig. 8: AWDIT vs Plume-like, %s ==\n",
                isolationLevelName(Level));
    std::printf("%-34s %8s %10s %12s %12s %9s\n", "history", "txns", "ops",
                "AWDIT(s)", "Plume~(s)", "speedup");
    std::vector<Point> Points;
    for (Benchmark Bench : Benches) {
      for (ConsistencyMode Mode : Modes) {
        for (size_t Sessions : SessionCounts) {
          for (int Exp = MinExp; Exp <= MaxExp; Exp += 2) {
            GenerateParams P;
            P.Bench = Bench;
            P.Mode = Mode;
            P.Sessions = Sessions;
            P.Txns = static_cast<size_t>(1) << Exp;
            P.Seed = 7000 + Exp * 17 + Sessions;
            History H = generateHistory(P);

            TimedResult A = timeAwdit(H, Level);
            TimedResult Pl = timeBaseline(Plume, H, Level, Timeout);
            char Name[64];
            std::snprintf(Name, sizeof(Name), "%s/%s/k=%zu",
                          benchmarkName(Bench), consistencyModeName(Mode),
                          Sessions);
            Points.push_back({Name, P.Txns, H.numOps(), A.Seconds,
                              Pl.Seconds, Pl.TimedOut});
            std::printf("%-34s %8zu %10zu %12.4f %12s %8.1fx\n", Name,
                        P.Txns, H.numOps(), A.Seconds, cell(Pl).c_str(),
                        Pl.TimedOut ? 0.0 : Pl.Seconds / A.Seconds);
          }
        }
      }
    }

    // Aggregate statistics, as the paper reports them.
    std::vector<Point> Sorted = Points;
    std::sort(Sorted.begin(), Sorted.end(),
              [](const Point &A, const Point &B) { return A.Txns > B.Txns; });
    size_t TopCount = std::max<size_t>(1, Sorted.size() / 5);
    std::vector<Point> Largest(Sorted.begin(), Sorted.begin() + TopCount);
    size_t Timeouts = 0;
    for (const Point &P : Points)
      Timeouts += P.PlumeTimedOut;
    std::printf("\n%s summary: histories=%zu, plume timeouts=%zu\n",
                isolationLevelName(Level), Points.size(), Timeouts);
    std::printf("  geomean speedup (all histories):    %8.1fx\n",
                geomeanSpeedup(Points));
    std::printf("  geomean speedup (~20%% largest):     %8.1fx\n\n",
                geomeanSpeedup(Largest));
  }

  std::printf("Expected shape (paper): speedups grow with history size; "
              "paper reports 245x/193x/62x for\nRC/RA/CC on the largest "
              "histories against real Plume (absolute factors depend on "
              "the baseline's constants).\n");
  return 0;
}
