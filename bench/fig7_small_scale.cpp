//===- bench/fig7_small_scale.cpp - Paper Fig. 7 reproduction ----------------===//
//
// Fig. 7: running times of all isolation testers for checking Causal
// Consistency on histories from three benchmarks (RUBiS, C-Twitter, TPC-C)
// with 50 sessions, scaling the transaction count. The slow testers
// (closure/SMT class) hit the timeout wall early while AWDIT and the
// Plume-class tester stay fast.
//
// Substitutions (DESIGN.md §2): databases -> SimDb in causal mode;
// Plume -> PlumeLikeChecker; DBCop -> DbcopLikeChecker; CausalC+ and
// TCC-Mono -> NaiveChecker (the exhaustive O(n^2..3) class).
//
// Scale: default txns 2^8..2^12 with a 5 s timeout (quick). Set
// AWDIT_BENCH_SCALE=full for the paper's 2^10..2^15 with a 10 min timeout.
//
//===----------------------------------------------------------------------===//

#include "baseline/dbcop_like.h"
#include "baseline/naive_checker.h"
#include "baseline/plume_like.h"
#include "baseline/ser_checker.h"
#include "bench/bench_util.h"
#include "workload/generator.h"

#include <cstdio>
#include <vector>

using namespace awdit;
using namespace awdit::bench;

int main() {
  bool Full = fullScale();
  int MinExp = Full ? 10 : 8;
  int MaxExp = Full ? 15 : 12;
  double Timeout = Full ? 600.0 : 5.0;
  constexpr size_t Sessions = 50;

  PlumeLikeChecker Plume;
  DbcopLikeChecker Dbcop;
  NaiveChecker Naive;
  SerChecker Ser;

  std::printf("== Fig. 7: all testers, Causal Consistency, %zu sessions, "
              "timeout %.0fs ==\n",
              Sessions, Timeout);
  for (Benchmark Bench :
       {Benchmark::Rubis, Benchmark::CTwitter, Benchmark::Tpcc}) {
    std::printf("\n-- %s --\n", benchmarkName(Bench));
    std::printf("%8s %10s %12s %12s %12s %12s %12s\n", "txns", "ops",
                "AWDIT(s)", "Plume~(s)", "DBCop~(s)", "Naive~(s)",
                "SER-ex(s)");
    bool DbcopDead = false, NaiveDead = false, SerDead = false;
    for (int Exp = MinExp; Exp <= MaxExp; ++Exp) {
      GenerateParams P;
      P.Bench = Bench;
      P.Mode = ConsistencyMode::Causal;
      P.Sessions = Sessions;
      P.Txns = static_cast<size_t>(1) << Exp;
      P.Seed = 1000 + Exp;
      History H = generateHistory(P);

      TimedResult A =
          timeAwdit(H, IsolationLevel::CausalConsistency);
      TimedResult Pl = timeBaseline(Plume, H,
                                    IsolationLevel::CausalConsistency,
                                    Timeout);
      // Once a slow tester times out it only gets slower; skip it (the
      // paper's plots stop at the timeout line too).
      TimedResult Db{0, false, true}, Na{0, false, true},
          Se{0, false, true};
      if (!DbcopDead)
        Db = timeBaseline(Dbcop, H, IsolationLevel::CausalConsistency,
                          Timeout);
      if (!NaiveDead)
        Na = timeBaseline(Naive, H, IsolationLevel::CausalConsistency,
                          Timeout);
      if (!SerDead)
        Se = timeBaseline(Ser, H, IsolationLevel::CausalConsistency,
                          Timeout);
      DbcopDead |= Db.TimedOut;
      NaiveDead |= Na.TimedOut;
      SerDead |= Se.TimedOut;

      std::printf("%8zu %10zu %12s %12s %12s %12s %12s\n", P.Txns,
                  H.numOps(), cell(A).c_str(), cell(Pl).c_str(),
                  cell(Db).c_str(), cell(Na).c_str(), cell(Se).c_str());
    }
  }
  std::printf("\nExpected shape (paper): DBCop-/Naive-class testers hit the "
              "timeout within the sweep;\nAWDIT and the Plume-class tester "
              "finish in (milli)seconds, with AWDIT fastest.\n");
  return 0;
}
