//===- bench/fig9_scalability.cpp - Paper Fig. 9 reproduction ----------------===//
//
// Fig. 9: AWDIT scalability in three sweeps, for each isolation level:
//   (left)   time vs number of transactions (k = 100, bounded txn size):
//            linear for all levels;
//   (middle) time vs number of sessions (fixed txns): CC grows with k,
//            RC/RA flat;
//   (right)  time vs operations per transaction (fixed total ops): flat in
//            practice for all levels.
//
// Scale: default is ~4x smaller than the paper's axes; set
// AWDIT_BENCH_SCALE=full for the paper's sizes (txns up to 1.25e5 and a
// 1e6-op transaction-size sweep).
//
//===----------------------------------------------------------------------===//

#include "bench/bench_util.h"
#include "workload/generator.h"

#include <cstdio>

using namespace awdit;
using namespace awdit::bench;

namespace {

void printRow(size_t X, const History &H) {
  TimedResult Rc = timeAwdit(H, IsolationLevel::ReadCommitted);
  TimedResult Ra = timeAwdit(H, IsolationLevel::ReadAtomic);
  TimedResult Cc = timeAwdit(H, IsolationLevel::CausalConsistency);
  std::printf("%10zu %10zu %10.4f %10.4f %10.4f\n", X, H.numOps(),
              Rc.Seconds, Ra.Seconds, Cc.Seconds);
}

} // namespace

int main() {
  bool Full = fullScale();
  size_t Scale = Full ? 1 : 4;

  // (left) Time vs transactions: C-Twitter, 100 sessions.
  std::printf("== Fig. 9 (left): time vs transactions (k=100) ==\n");
  std::printf("%10s %10s %10s %10s %10s\n", "txns", "ops", "RC(s)", "RA(s)",
              "CC(s)");
  for (size_t Txns = 25000; Txns <= 125000; Txns += 25000) {
    GenerateParams P;
    P.Bench = Benchmark::CTwitter;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = 100;
    P.Txns = Txns / Scale;
    P.Seed = 31 + Txns;
    History H = generateHistory(P);
    printRow(P.Txns, H);
  }

  // (middle) Time vs sessions: fixed transaction count.
  size_t FixedTxns = 100000 / Scale;
  std::printf("\n== Fig. 9 (middle): time vs sessions (txns=%zu) ==\n",
              FixedTxns);
  std::printf("%10s %10s %10s %10s %10s\n", "sessions", "ops", "RC(s)",
              "RA(s)", "CC(s)");
  for (size_t Sessions = 25; Sessions <= 100; Sessions += 25) {
    GenerateParams P;
    P.Bench = Benchmark::CTwitter;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = Sessions;
    P.Txns = FixedTxns;
    P.Seed = 47 + Sessions;
    History H = generateHistory(P);
    printRow(Sessions, H);
  }

  // (right) Time vs transaction size: fixed total operations, custom
  // uniform workload (the paper uses a custom Cobra benchmark here since
  // C-Twitter cannot scale transaction sizes).
  size_t TotalOps = 1000000 / Scale;
  std::printf("\n== Fig. 9 (right): time vs txn size (ops=%zu, k=100) ==\n",
              TotalOps);
  std::printf("%10s %10s %10s %10s %10s\n", "txn_size", "ops", "RC(s)",
              "RA(s)", "CC(s)");
  for (size_t TxnSize = 25; TxnSize <= 100; TxnSize += 25) {
    GenerateParams P;
    P.Bench = Benchmark::Random;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = 100;
    P.Txns = TotalOps / TxnSize;
    P.TxnSize = TxnSize;
    P.KeySpace = 10000;
    P.Seed = 59 + TxnSize;
    History H = generateHistory(P);
    printRow(TxnSize, H);
  }

  // (extra, beyond the paper) Parallel engine scaling: the same history
  // checked by the sharded engine at increasing worker counts. threads=1
  // is the exact sequential path, so each row's ratio to the first is the
  // engine's speedup on this machine.
  std::printf("\n== Parallel engine: time vs threads (txns=%zu, k=100) ==\n",
              FixedTxns);
  std::printf("%10s %10s %10s %10s %10s\n", "threads", "ops", "RC(s)",
              "RA(s)", "CC(s)");
  {
    GenerateParams P;
    P.Bench = Benchmark::CTwitter;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = 100;
    P.Txns = FixedTxns;
    P.Seed = 83;
    History H = generateHistory(P);
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      TimedResult Rc = timeAwdit(H, IsolationLevel::ReadCommitted, Threads);
      TimedResult Ra = timeAwdit(H, IsolationLevel::ReadAtomic, Threads);
      TimedResult Cc =
          timeAwdit(H, IsolationLevel::CausalConsistency, Threads);
      std::printf("%10u %10zu %10.4f %10.4f %10.4f\n", Threads, H.numOps(),
                  Rc.Seconds, Ra.Seconds, Cc.Seconds);
    }
  }

  std::printf("\nExpected shape (paper): (left) linear in txns for every "
              "level; (middle) CC grows with k\nwhile RC/RA stay flat; "
              "(right) no discernible scaling in txn size.\n");
  return 0;
}
