//===- bench/ingest_fastpath.cpp - Ingest decode-path benchmarks -------------===//
//
// The proof benches for the SWAR/zero-copy ingest fast path:
//
//  - BM_DecodeLine/{native,plume,dbcop}: per-line decode throughput of the
//    TokenCursor-based decoders, bytes/second as the primary counter. The
//    native variant also reports `speedup_vs_scalar_x`: a median-of-7
//    wall-clock comparison against a verbatim copy of the pre-fast-path
//    decoder (heap-allocating tokenize() + from_chars), computed inside
//    the benchmark so the gate needs no baseline artifact.
//  - BM_DecodeLine/native_scalar_tail: the same decoder with the SIMD
//    scanners forced off — isolates the SWAR fallback the fuzz tests
//    exercise, and what non-SSE2/NEON builds run.
//  - BM_IngestBytesPerSec/<threads>: end-to-end ShardedMonitorIngest
//    throughput (arena reader, worker decode, applier), bytes/second.
//    CI floors this counter with `compare_bench.py --counter-gate`.
//
//===----------------------------------------------------------------------===//

#include "checker/monitor.h"
#include "io/dbcop_format.h"
#include "io/plume_format.h"
#include "io/sharded_ingest.h"
#include "io/stream_parser.h"
#include "io/text_format.h"
#include "io/token_util.h"
#include "workload/generator.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <map>
#include <string>
#include <string_view>
#include <vector>

using namespace awdit;

namespace {

//===----------------------------------------------------------------------===//
// The pre-fast-path scalar decoder, copied verbatim from the tree before
// the TokenCursor migration: a fresh std::vector of tokens per line, and
// from_chars for every integer. This is the baseline the ≥3× acceptance
// gate measures against; keeping it in-bench (instead of diffing CI
// artifacts) makes the ratio machine-independent.
//===----------------------------------------------------------------------===//

namespace legacy {

std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Start)
      Tokens.push_back(Line.substr(Start, I - Start));
  }
  return Tokens;
}

template <typename IntT> bool parseInt(std::string_view Token, IntT &Out) {
  auto [Ptr, Ec] =
      std::from_chars(Token.data(), Token.data() + Token.size(), Out);
  return Ec == std::errc() && Ptr == Token.data() + Token.size();
}

LineEvent malformed(std::string Msg) {
  LineEvent E;
  E.Kind = LineEvent::Type::Malformed;
  E.Error = std::move(Msg);
  return E;
}

LineEvent decodeNativeLine(std::string_view Line) {
  LineEvent E;
  std::vector<std::string_view> Tok = tokenize(Line);
  if (Tok.empty() || Tok[0].front() == '#')
    return E; // Blank
  if (Tok[0] == "b") {
    E.Kind = LineEvent::Type::Begin;
    if (Tok.size() != 2 || !parseInt(Tok[1], E.Session))
      E.Error = "expected 'b <session>'";
    return E;
  }
  if (Tok[0] == "r" || Tok[0] == "w") {
    E.Kind =
        Tok[0] == "r" ? LineEvent::Type::ReadOp : LineEvent::Type::WriteOp;
    if (Tok.size() != 3 || !parseInt(Tok[1], E.K) || !parseInt(Tok[2], E.V))
      E.Error = "expected '<r|w> <key> <value>'";
    return E;
  }
  if (Tok[0] == "c" || Tok[0] == "a") {
    E.Kind = Tok[0] == "c" ? LineEvent::Type::Commit : LineEvent::Type::Abort;
    return E;
  }
  if (Tok[0] == "t") {
    E.Kind = LineEvent::Type::Clock;
    if (Tok.size() != 2 || !parseInt(Tok[1], E.Num))
      E.Error = "expected 't <ticks>'";
    return E;
  }
  return malformed("unknown directive '" + std::string(Tok[0]) + "'");
}

} // namespace legacy

//===----------------------------------------------------------------------===//
// Corpus: one mid-size c-twitter history serialized into each format and
// pre-split into lines, so the measured loop is decode and nothing else.
//===----------------------------------------------------------------------===//

struct Corpus {
  std::vector<std::string_view> Lines; // newline stripped
  uint64_t Bytes = 0;                  // stream bytes, newlines included
  std::string Text;                    // backing storage for the views
};

const History &benchHistory() {
  static const History H = [] {
    GenerateParams P;
    P.Bench = Benchmark::CTwitter;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = 32;
    P.Txns = 8192;
    P.Seed = 12345;
    return generateHistory(P);
  }();
  return H;
}

const Corpus &corpusFor(const std::string &Format) {
  static std::map<std::string, Corpus> Cache;
  auto It = Cache.find(Format);
  if (It != Cache.end())
    return It->second;
  Corpus C;
  if (Format == "plume")
    C.Text = writePlumeHistory(benchHistory());
  else if (Format == "dbcop")
    C.Text = writeDbcopHistory(benchHistory());
  else
    C.Text = writeTextHistory(benchHistory());
  std::string_view V = C.Text;
  size_t Pos = 0;
  while (Pos < V.size()) {
    size_t Nl = io::scanToNewline(V, Pos);
    C.Lines.push_back(V.substr(Pos, Nl - Pos));
    C.Bytes += (Nl - Pos) + 1;
    Pos = Nl + 1;
  }
  return Cache.emplace(Format, std::move(C)).first->second;
}

uint64_t decodeAll(LineDecoder Decode, const Corpus &C) {
  uint64_t Sink = 0;
  for (std::string_view Line : C.Lines) {
    LineEvent E = Decode(Line);
    Sink += static_cast<uint64_t>(E.Kind) + E.K + E.V + E.Num;
  }
  return Sink;
}

/// Median-of-7 wall-clock seconds for one full-corpus decode pass.
double medianDecodeSecs(LineDecoder Decode, const Corpus &C) {
  std::vector<double> Samples;
  for (int I = 0; I < 7; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(decodeAll(Decode, C));
    auto T1 = std::chrono::steady_clock::now();
    Samples.push_back(std::chrono::duration<double>(T1 - T0).count());
  }
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

void decodeLineBench(benchmark::State &State, const std::string &Format,
                     bool WithSpeedup, bool ForceScalar) {
  const Corpus &C = corpusFor(Format);
  LineDecoder Decode = lineDecoderFor(Format);
  bool SimdBefore = io::simdTokenizerEnabled();
  if (ForceScalar)
    io::setSimdTokenizer(false);
  for (auto _ : State)
    benchmark::DoNotOptimize(decodeAll(Decode, C));
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(C.Bytes));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(C.Lines.size()));
  if (WithSpeedup) {
    // The acceptance ratio, measured in one process so CPU-speed noise
    // cancels: old heap-allocating decoder vs the cursor decoder.
    double Fast = medianDecodeSecs(Decode, C);
    double Slow = medianDecodeSecs(legacy::decodeNativeLine, C);
    State.counters["speedup_vs_scalar_x"] =
        Fast > 0 ? Slow / Fast : 0.0;
  }
  if (ForceScalar)
    io::setSimdTokenizer(SimdBefore);
}

void BM_DecodeLine_native(benchmark::State &State) {
  decodeLineBench(State, "native", /*WithSpeedup=*/true,
                  /*ForceScalar=*/false);
}
void BM_DecodeLine_native_scalar_tail(benchmark::State &State) {
  decodeLineBench(State, "native", /*WithSpeedup=*/false,
                  /*ForceScalar=*/true);
}
void BM_DecodeLine_plume(benchmark::State &State) {
  decodeLineBench(State, "plume", /*WithSpeedup=*/false,
                  /*ForceScalar=*/false);
}
void BM_DecodeLine_dbcop(benchmark::State &State) {
  decodeLineBench(State, "dbcop", /*WithSpeedup=*/false,
                  /*ForceScalar=*/false);
}

BENCHMARK(BM_DecodeLine_native)->Name("BM_DecodeLine/native");
BENCHMARK(BM_DecodeLine_native_scalar_tail)
    ->Name("BM_DecodeLine/native_scalar_tail");
BENCHMARK(BM_DecodeLine_plume)->Name("BM_DecodeLine/plume");
BENCHMARK(BM_DecodeLine_dbcop)->Name("BM_DecodeLine/dbcop");

//===----------------------------------------------------------------------===//
// End-to-end ingest: stream bytes through the arena reader, sharded
// decode, and the applier, exactly as `awdit monitor` and a hot server
// session run it. bytes/second is the counter CI floors.
//===----------------------------------------------------------------------===//

void BM_IngestBytesPerSec(benchmark::State &State) {
  const Corpus &C = corpusFor("native");
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    MonitorOptions Options;
    Options.Level = IsolationLevel::CausalConsistency;
    Options.Check.MaxWitnesses = 1;
    Options.CheckIntervalTxns = 256;
    Monitor M(Options);
    ShardedMonitorIngest Ingest(M, "native", Threads);
    std::string_view Text = C.Text;
    constexpr size_t Chunk = 1 << 16;
    for (size_t Pos = 0; Pos < Text.size(); Pos += Chunk) {
      // Feed through the zero-copy window, the same way the CLI wraps
      // read(2): ask for a write target, copy the "wire" bytes once,
      // commit.
      std::string_view Piece = Text.substr(Pos, Chunk);
      auto [Dst, Cap] = Ingest.writeWindow(Piece.size());
      std::copy(Piece.begin(), Piece.end(), Dst);
      (void)Cap;
      if (!Ingest.commitBytes(Piece.size()))
        break;
    }
    Ingest.finishStream();
    benchmark::DoNotOptimize(M.finalize());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(C.Bytes));
}

BENCHMARK(BM_IngestBytesPerSec)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

} // namespace

BENCHMARK_MAIN();
