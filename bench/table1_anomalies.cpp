//===- bench/table1_anomalies.cpp - Paper Table 1 reproduction ----------------===//
//
// Table 1: eight histories carrying real isolation anomalies (future reads
// and causality cycles), with whether each tester reports them. AWDIT
// reports every anomaly; the baseline misses some on large histories under
// its time budget.
//
// Substitutions: the production bugs behind the paper's histories are
// planted with the anomaly injector on TPC-C histories matching the
// paper's (size, sessions, database) rows; Plume -> PlumeLikeChecker with
// a per-level time budget (paper: 10 min / 2 h).
//
//===----------------------------------------------------------------------===//

#include "baseline/plume_like.h"
#include "bench/bench_util.h"
#include "sim/anomaly_injector.h"
#include "workload/generator.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace awdit;
using namespace awdit::bench;

namespace {

struct Row {
  const char *Name;
  size_t Txns;
  size_t Sessions;
  ConsistencyMode Database; // stands in for CockroachDB / PostgreSQL
  AnomalyKind Anomaly;
};

/// "Reported?" of one tester at one level, as the table's cells.
const char *mark(bool Detected) { return Detected ? "yes" : "MISS"; }

} // namespace

int main() {
  bool Full = fullScale();
  // Paper sizes range 2048..1048576 txns; the quick default divides the
  // two largest rows by 8/16 so the whole table runs in seconds.
  const Row Rows[] = {
      {"H1", 32768, 100, ConsistencyMode::Causal, AnomalyKind::FutureRead},
      {"H2", 50000, 30, ConsistencyMode::Causal,
       AnomalyKind::CausalityCycle},
      {"H3", 2048, 50, ConsistencyMode::Serializable,
       AnomalyKind::FutureRead},
      {"H4", 16384, 50, ConsistencyMode::Serializable,
       AnomalyKind::CausalityCycle},
      {"H5", 32768, 100, ConsistencyMode::Serializable,
       AnomalyKind::FutureRead},
      {"H6", 50000, 30, ConsistencyMode::Serializable,
       AnomalyKind::FutureRead},
      {"H7", 50000, 40, ConsistencyMode::Serializable,
       AnomalyKind::FutureRead},
      {"H8", 1048576, 100, ConsistencyMode::Serializable,
       AnomalyKind::CausalityCycle},
  };
  double BaselineBudget = Full ? 600.0 : 2.0;

  PlumeLikeChecker Plume;

  std::printf("== Table 1: anomalies reported by AWDIT and the baseline "
              "(budget %.0fs/level) ==\n",
              BaselineBudget);
  std::printf("%-4s %9s %9s %-14s %-16s | %-14s %-14s\n", "id", "txns",
              "sessions", "database", "violation", "AWDIT", "Plume~");

  size_t AwditDetected = 0, PlumeDetected = 0;
  for (const Row &R : Rows) {
    size_t Txns = R.Txns;
    if (!Full && Txns > 40000)
      Txns /= (Txns > 100000 ? 16 : 8);

    GenerateParams P;
    P.Bench = Benchmark::Tpcc;
    P.Mode = R.Database;
    P.Sessions = R.Sessions;
    P.Txns = Txns;
    P.Seed = 90000 + Txns;
    History Base = generateHistory(P);
    std::optional<History> H = injectAnomaly(Base, R.Anomaly, P.Seed + 1);
    if (!H) {
      std::printf("%-4s injection failed\n", R.Name);
      continue;
    }

    // A tester "reports" the anomaly if any level it supports flags the
    // history within its budget.
    bool Awdit = false, PlumeFound = false, PlumeBudgetHit = false;
    for (IsolationLevel Level : AllIsolationLevels) {
      Awdit |= !timeAwdit(*H, Level).Consistent;
      TimedResult B = timeBaseline(Plume, *H, Level, BaselineBudget);
      PlumeBudgetHit |= B.TimedOut;
      PlumeFound |= !B.TimedOut && !B.Consistent;
    }
    AwditDetected += Awdit;
    PlumeDetected += PlumeFound;

    std::string PlumeCell = mark(PlumeFound);
    if (PlumeBudgetHit)
      PlumeCell += " (budget)";
    std::printf("%-4s %9zu %9zu %-14s %-16s | %-14s %-14s\n", R.Name, Txns,
                R.Sessions, consistencyModeName(R.Database),
                anomalyKindName(R.Anomaly), mark(Awdit), PlumeCell.c_str());
  }

  std::printf("\nAWDIT reported %zu/8 anomalies; baseline %zu/8.\n",
              AwditDetected, PlumeDetected);
  std::printf("Expected shape (paper): AWDIT reports all 8; the baseline "
              "misses anomalies on the\nlargest histories when its budget "
              "runs out (H8 in the paper).\n");
  return 0;
}
